//! The deterministic proxy-fleet harness: N whole households from the
//! live prototype (`threegol-proxy`), each an isolated tokio runtime
//! on its own virtual-network namespace, sharded across the
//! work-stealing [`Pool`].
//!
//! Each home is one replication unit: [`run_fleet`] hands every
//! [`HomeSpec`] to a pool worker, which drives the full household —
//! origin, device proxies with discovery announcers, client-side HLS
//! proxy, concurrent VoD prebuffer + photo upload — to completion
//! inside one `block_on` under virtual time. Because a runtime's
//! clock, scheduler and sockets are all process-local and
//! deterministic, and [`crate::exec::map`] merges results in unit
//! order, the fleet report is byte-identical for any worker count and
//! across repeated runs — and no kernel socket is ever opened.

use threegol_proxy::{Home, HomeReport, HomeSpec};

use crate::exec::{map, Pool};

/// The spec for home `index`: the paper-default household with the
/// access links cycled through four ADSL tiers and one-to-three phones
/// per home, so the fleet is heterogeneous (a street, not one house
/// copied N times) while staying a pure function of the index.
pub fn home_spec(index: u16) -> HomeSpec {
    const ADSL_TIERS: [(f64, f64); 4] = [(2e6, 0.3e6), (4e6, 0.5e6), (6e6, 0.7e6), (8e6, 1.0e6)];
    let (down, up) = ADSL_TIERS[(index % 4) as usize];
    HomeSpec {
        adsl_down_bps: down,
        adsl_up_bps: up,
        devices: 1 + (index % 3) as usize,
        ..HomeSpec::paper_default(index)
    }
}

/// Run a fleet of `homes` households across the pool and return the
/// per-home reports in home order.
///
/// Panics if any home's workload fails: in the virtual-net prototype
/// every failure is a bug, never weather.
pub fn run_fleet(homes: usize, pool: &Pool) -> Vec<HomeReport> {
    assert!(homes <= u16::MAX as usize + 1, "home index space is u16");
    let specs: Vec<HomeSpec> = (0..homes).map(|h| home_spec(h as u16)).collect();
    map(pool, specs, |spec| {
        tokio::runtime::block_on(Home::run(spec))
            .unwrap_or_else(|e| panic!("home {} failed: {e}", spec.index))
    })
}

/// Distribution of one per-home metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Smallest value.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest value.
    pub max: f64,
}

impl Distribution {
    /// Summarize `values` (must be non-empty).
    pub fn of(values: &[f64]) -> Distribution {
        assert!(!values.is_empty());
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
        Distribution {
            min: sorted[0],
            p50: sorted[sorted.len() / 2],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max: sorted[sorted.len() - 1],
        }
    }
}

/// Fleet-wide rollup of the per-home reports.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Number of homes.
    pub homes: usize,
    /// Per-home VoD prebuffer gain over ADSL alone.
    pub vod_gain: Distribution,
    /// Per-home photo-upload gain over ADSL alone.
    pub upload_gain: Distribution,
    /// Total bytes onloaded onto 3G paths (uploads).
    pub device_bytes: f64,
    /// Total bytes moved by aborted duplicates (uploads).
    pub wasted_bytes: f64,
}

/// Roll `reports` up into a [`FleetSummary`].
pub fn summarize(reports: &[HomeReport]) -> FleetSummary {
    let vod: Vec<f64> = reports.iter().map(|r| r.vod_gain).collect();
    let upload: Vec<f64> = reports.iter().map(|r| r.upload_gain).collect();
    FleetSummary {
        homes: reports.len(),
        vod_gain: Distribution::of(&vod),
        upload_gain: Distribution::of(&upload),
        device_bytes: reports.iter().map(|r| r.upload_device_bytes).sum(),
        wasted_bytes: reports.iter().map(|r| r.upload_wasted_bytes).sum(),
    }
}

impl FleetSummary {
    /// Human-readable rollup table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fleet: {} homes (virtual net, virtual time)\n", self.homes));
        out.push_str("gain over ADSL alone        min    p50   mean    max\n");
        for (name, d) in [("vod prebuffer", self.vod_gain), ("photo upload", self.upload_gain)] {
            out.push_str(&format!(
                "  {name:<24} {:>6.2} {:>6.2} {:>6.2} {:>6.2}\n",
                d.min, d.p50, d.mean, d.max
            ));
        }
        out.push_str(&format!(
            "onloaded {:.2} MB to 3G paths, {:.2} MB duplicate waste\n",
            self.device_bytes / 1e6,
            self.wasted_bytes / 1e6
        ));
        out
    }
}

/// A stable content digest of the full report vector (FNV-1a over the
/// `Debug` rendering): two runs of the same fleet must agree on every
/// bit, whatever the worker count.
pub fn digest(reports: &[HomeReport]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for report in reports {
        for byte in format!("{report:?}").bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_heterogeneous_but_deterministic() {
        assert_eq!(home_spec(5), home_spec(5));
        assert_ne!(home_spec(0).adsl_down_bps, home_spec(1).adsl_down_bps);
        assert_eq!(home_spec(0).devices, 1);
        assert_eq!(home_spec(2).devices, 3);
        assert_eq!(home_spec(4).adsl_down_bps, home_spec(0).adsl_down_bps);
    }

    #[test]
    fn distribution_of_small_sample() {
        let d = Distribution::of(&[3.0, 1.0, 2.0]);
        assert_eq!((d.min, d.p50, d.max), (1.0, 2.0, 3.0));
        assert!((d.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn small_fleet_summarizes() {
        let reports = Pool::with(2, |pool| run_fleet(4, pool));
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().enumerate().all(|(h, r)| r.index as usize == h));
        let summary = summarize(&reports);
        assert_eq!(summary.homes, 4);
        assert!(summary.upload_gain.min > 0.0);
        assert!(summary.device_bytes > 0.0);
        assert!(!summary.render().is_empty());
    }
}
