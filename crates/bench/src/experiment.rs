//! The typed experiment interface and its static registry.
//!
//! Every reproduced table/figure implements [`Experiment`]: it
//! decomposes into independent, independently-seeded replication units
//! ([`Experiment::units`]), each unit runs in isolation
//! ([`Experiment::run_unit`]), and the partial results are merged **in
//! unit order** into the final [`Report`] ([`Experiment::merge`]).
//! Because unit seeds derive from the unit's coordinates (repetition
//! index, location, quality, …) and never from execution order, the
//! merged report is byte-identical whether the units ran serially or
//! sharded across any number of pool workers.
//!
//! [`DynExperiment`] is the object-safe erasure of the trait (units
//! and partials are experiment-specific types); the static
//! [`registry`] holds one `&'static dyn DynExperiment` per experiment
//! in paper order, replacing the old stringly-typed
//! `run_experiment(id, scale)` dispatch.

use std::fmt;

use crate::exec::{map, Pool};
use crate::experiments;
use crate::util::Report;

/// A validated experiment scale in `(0, 1]`.
///
/// `1.0` is the paper-fidelity configuration; smaller values shrink
/// repetition counts and population sizes proportionally (each
/// experiment keeps a floor of 2 repetitions, see `util::reps`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(f64);

impl Scale {
    /// The full, paper-fidelity scale (1.0).
    pub const FULL: Scale = Scale(1.0);

    /// Validate a scale: must be a finite value in `(0, 1]`.
    ///
    /// Rejecting instead of clamping keeps a typo'd `repro_all 0`
    /// from silently producing floor-rep pseudo-experiments.
    pub fn new(value: f64) -> Result<Scale, ScaleError> {
        if value.is_finite() && value > 0.0 && value <= 1.0 {
            Ok(Scale(value))
        } else {
            Err(ScaleError(value))
        }
    }

    /// The raw scale factor.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Error for a scale outside `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleError(pub f64);

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scale must be a finite value in (0, 1], got {}", self.0)
    }
}

impl std::error::Error for ScaleError {}

/// One reproduced table/figure, decomposed into replication units.
pub trait Experiment {
    /// One independent cell of the experiment's sweep: a repetition
    /// block at fixed coordinates (location, quality, policy, …),
    /// carrying everything `run_unit` needs. Seeds must derive from
    /// these coordinates, never from execution order.
    type Unit: Send + Sync + 'static;

    /// The result of one unit, carrying whatever `merge` needs.
    type Partial: Send + 'static;

    /// Stable experiment id (e.g. `"fig06"`), unique in the registry.
    fn id(&self) -> &'static str;

    /// The paper artifact this reproduces (e.g. `"Figure 6"`).
    fn paper_artifact(&self) -> &'static str;

    /// Decompose the experiment at `scale` into replication units.
    /// The returned order is the merge order.
    fn units(&self, scale: Scale) -> Vec<Self::Unit>;

    /// Run one unit. Must not depend on any other unit having run.
    fn run_unit(&self, unit: &Self::Unit) -> Self::Partial;

    /// Merge the per-unit partials — given in `units()` order — into
    /// the final report.
    fn merge(&self, scale: Scale, partials: Vec<Self::Partial>) -> Report;
}

/// Object-safe view of an [`Experiment`] (unit/partial types erased),
/// what the [`registry`] and the driver binaries work with.
pub trait DynExperiment: Send + Sync {
    /// Stable experiment id (e.g. `"fig06"`).
    fn id(&self) -> &'static str;

    /// The paper artifact this reproduces (e.g. `"Figure 6"`).
    fn paper_artifact(&self) -> &'static str;

    /// Number of replication units at `scale`.
    fn unit_count(&self, scale: Scale) -> usize;

    /// Run every unit inline on the calling thread and merge.
    fn run_serial(&self, scale: Scale) -> Report;

    /// Shard units across the pool's workers and merge in unit order;
    /// byte-identical to [`DynExperiment::run_serial`] for any worker
    /// count.
    fn run_sharded(&self, scale: Scale, pool: &Pool) -> Report;
}

impl<E> DynExperiment for E
where
    E: Experiment + Copy + Send + Sync + 'static,
{
    fn id(&self) -> &'static str {
        Experiment::id(self)
    }

    fn paper_artifact(&self) -> &'static str {
        Experiment::paper_artifact(self)
    }

    fn unit_count(&self, scale: Scale) -> usize {
        self.units(scale).len()
    }

    fn run_serial(&self, scale: Scale) -> Report {
        let units = self.units(scale);
        let partials = units.iter().map(|u| self.run_unit(u)).collect();
        self.merge(scale, partials)
    }

    fn run_sharded(&self, scale: Scale, pool: &Pool) -> Report {
        let experiment = *self;
        let partials = map(pool, self.units(scale), move |u| experiment.run_unit(u));
        self.merge(scale, partials)
    }
}

/// The 17 paper experiments, in paper order.
static PAPER: &[&dyn DynExperiment] = &[
    &experiments::cap02::Cap02,
    &experiments::fig01::Fig01,
    &experiments::fig03::Fig03,
    &experiments::fig04::Fig04,
    &experiments::fig05::Fig05,
    &experiments::tab02::Tab02,
    &experiments::tab03::Tab03,
    &experiments::fig06::Fig06,
    &experiments::fig07::Fig07,
    &experiments::fig08::Fig08,
    &experiments::fig09::Fig09,
    &experiments::fig10::Fig10,
    &experiments::fig11a::Fig11a,
    &experiments::fig11b::Fig11b,
    &experiments::fig11c::Fig11c,
    &experiments::tab04::Tab04,
    &experiments::est06::Est06,
];

/// The 5 ablations beyond the paper's evaluation.
static ABLATIONS: &[&dyn DynExperiment] = &[
    &experiments::abl01::Abl01,
    &experiments::abl02::Abl02,
    &experiments::abl03::Abl03,
    &experiments::abl04::Abl04,
    &experiments::abl05::Abl05,
];

/// The static experiment registry: paper experiments then ablations.
pub struct Registry {
    paper: &'static [&'static dyn DynExperiment],
    ablations: &'static [&'static dyn DynExperiment],
}

static REGISTRY: Registry = Registry { paper: PAPER, ablations: ABLATIONS };

/// The registry of every experiment, in paper order.
pub fn registry() -> &'static Registry {
    &REGISTRY
}

impl Registry {
    /// The paper experiments, in paper order.
    pub fn paper(&self) -> impl Iterator<Item = &'static dyn DynExperiment> + '_ {
        self.paper.iter().copied()
    }

    /// The ablations, in id order.
    pub fn ablations(&self) -> impl Iterator<Item = &'static dyn DynExperiment> + '_ {
        self.ablations.iter().copied()
    }

    /// Every experiment: paper order, then ablations.
    pub fn all(&self) -> impl Iterator<Item = &'static dyn DynExperiment> + '_ {
        self.paper().chain(self.ablations())
    }

    /// Look an experiment up by id.
    pub fn get(&self, id: &str) -> Option<&'static dyn DynExperiment> {
        self.all().find(|e| e.id() == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_validation() {
        assert!(Scale::new(1.0).is_ok());
        assert!(Scale::new(0.05).is_ok());
        assert_eq!(Scale::new(0.25).unwrap().get(), 0.25);
        for bad in [0.0, -1.0, 1.5, f64::NAN, f64::INFINITY] {
            let err = Scale::new(bad).unwrap_err();
            assert!(err.to_string().contains("(0, 1]"), "{err}");
        }
    }

    #[test]
    fn registry_has_every_id_exactly_once_in_paper_order() {
        let paper_ids: Vec<&str> = registry().paper().map(|e| e.id()).collect();
        assert_eq!(
            paper_ids,
            [
                "cap02", "fig01", "fig03", "fig04", "fig05", "tab02", "tab03", "fig06", "fig07",
                "fig08", "fig09", "fig10", "fig11a", "fig11b", "fig11c", "tab04", "est06",
            ]
        );
        let ablation_ids: Vec<&str> = registry().ablations().map(|e| e.id()).collect();
        assert_eq!(ablation_ids, ["abl01", "abl02", "abl03", "abl04", "abl05"]);
        let mut all: Vec<&str> = registry().all().map(|e| e.id()).collect();
        assert_eq!(all.len(), 22);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 22, "duplicate experiment id in registry");
    }

    #[test]
    fn registry_lookup_by_id() {
        let fig06 = registry().get("fig06").expect("fig06 registered");
        assert_eq!(fig06.id(), "fig06");
        assert!(fig06.unit_count(Scale::new(0.1).unwrap()) > 1);
        assert!(registry().get("nope").is_none());
    }
}
