//! Ablation: the home Wi-Fi standard (802.11g vs 802.11n).
//!
//! §4.1 bounds 3GOL's backhaul aggregation by the LAN goodput
//! (~24 Mbit/s for 802.11g, ~110 Mbit/s for 802.11n). On the paper's
//! HSPA setups the LAN never binds; with a fast line plus LTE phones
//! (the §2.3 outlook) an 802.11g LAN becomes the bottleneck. This
//! ablation quantifies both regimes.

use threegol_core::home::WifiStandard;
use threegol_core::vod::VodExperiment;
use threegol_hls::VideoQuality;
use threegol_radio::{LocationProfile, RadioGeneration};

use crate::util::{reps, secs, table, Check, Report};

/// Run the Wi-Fi ablation.
pub fn run(scale: f64) -> Report {
    let n_reps = reps(10, scale);
    let q4 = VideoQuality::paper_ladder().swap_remove(3);
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (setup, location, generation) in [
        ("HSPA on 2 Mbit/s ADSL", LocationProfile::reference_2mbps(), RadioGeneration::Hspa),
        (
            "LTE on 21.6 Mbit/s line",
            LocationProfile::paper_table4().swap_remove(1),
            RadioGeneration::Lte,
        ),
    ] {
        let mut per_wifi = Vec::new();
        for wifi in [WifiStandard::G, WifiStandard::N] {
            let mut e = VodExperiment::paper_default(location.clone(), q4.clone(), 2);
            e.wifi = wifi;
            e.generation = generation;
            let s = e.run_mean(n_reps);
            per_wifi.push(s.download.mean);
            rows.push(vec![
                setup.to_string(),
                format!("{wifi:?}"),
                secs(s.download.mean),
                secs(s.prebuffer.mean),
            ]);
        }
        results.push((setup, per_wifi[0], per_wifi[1])); // (g, n)
    }
    let (_, hspa_g, hspa_n) = results[0];
    let (_, lte_g, lte_n) = results[1];
    let checks = vec![
        Check::new(
            "HSPA era: LAN never binds",
            "802.11g ≈ 802.11n for HSPA-rate onloading",
            format!("g {} s vs n {} s", secs(hspa_g), secs(hspa_n)),
            (hspa_g / hspa_n - 1.0).abs() < 0.10,
        ),
        Check::new(
            "LTE outlook: 802.11n pays off",
            "an 802.11g LAN caps high-rate aggregation",
            format!("g {} s vs n {} s", secs(lte_g), secs(lte_n)),
            lte_n <= lte_g * 1.02,
        ),
    ];
    Report {
        id: "abl01",
        title: "Ablation: Wi-Fi LAN standard (802.11g vs 802.11n)",
        body: table(&["setup", "wifi", "download s", "prebuffer s"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn wifi_ablation_holds() {
        let r = super::run(0.3);
        assert!(r.all_ok(), "{}", r.render());
    }
}
