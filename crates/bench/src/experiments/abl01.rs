//! Ablation: the home Wi-Fi standard (802.11g vs 802.11n).
//!
//! §4.1 bounds 3GOL's backhaul aggregation by the LAN goodput
//! (~24 Mbit/s for 802.11g, ~110 Mbit/s for 802.11n). On the paper's
//! HSPA setups the LAN never binds; with a fast line plus LTE phones
//! (the §2.3 outlook) an 802.11g LAN becomes the bottleneck. This
//! ablation quantifies both regimes.

use threegol_core::home::WifiStandard;
use threegol_core::vod::VodExperiment;
use threegol_hls::VideoQuality;
use threegol_radio::{LocationProfile, RadioGeneration};

use crate::experiment::{Experiment, Scale};
use crate::util::{reps, secs, Report};

/// The Wi-Fi-standard ablation.
#[derive(Debug, Clone, Copy)]
pub struct Abl01;

/// One (setup, Wi-Fi standard) cell: all its repetitions.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// 0 = HSPA on 2 Mbit/s ADSL, 1 = LTE on 21.6 Mbit/s line.
    pub setup: usize,
    /// The LAN standard under test.
    pub wifi: WifiStandard,
    /// Repetitions per cell.
    pub n_reps: u64,
}

/// One cell's mean download and pre-buffer times.
#[derive(Debug, Clone, Copy)]
pub struct Partial {
    /// Mean total download time, seconds.
    pub download_mean: f64,
    /// Mean pre-buffer time, seconds.
    pub prebuffer_mean: f64,
}

fn setup(index: usize) -> (&'static str, LocationProfile, RadioGeneration) {
    match index {
        0 => ("HSPA on 2 Mbit/s ADSL", LocationProfile::reference_2mbps(), RadioGeneration::Hspa),
        _ => (
            "LTE on 21.6 Mbit/s line",
            LocationProfile::paper_table4().swap_remove(1),
            RadioGeneration::Lte,
        ),
    }
}

impl Experiment for Abl01 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "abl01"
    }

    fn paper_artifact(&self) -> &'static str {
        "Ablation: Wi-Fi LAN standard"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = reps(10, scale.get());
        (0..2)
            .flat_map(|setup| {
                [WifiStandard::G, WifiStandard::N].into_iter().map(move |wifi| Unit {
                    setup,
                    wifi,
                    n_reps,
                })
            })
            .collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let q4 = VideoQuality::paper_ladder().swap_remove(3);
        let (_, location, generation) = setup(unit.setup);
        let mut e = VodExperiment::paper_default(location, q4, 2);
        e.wifi = unit.wifi;
        e.generation = generation;
        let s = e.run_mean(unit.n_reps);
        Partial { download_mean: s.download.mean, prebuffer_mean: s.prebuffer.mean }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        // Unit order: per setup, 802.11g then 802.11n.
        let mut rows = Vec::new();
        let mut results = Vec::new();
        for (si, pair) in partials.chunks(2).enumerate() {
            let (name, _, _) = setup(si);
            for (p, wifi) in pair.iter().zip([WifiStandard::G, WifiStandard::N]) {
                rows.push(vec![
                    name.to_string(),
                    format!("{wifi:?}"),
                    secs(p.download_mean),
                    secs(p.prebuffer_mean),
                ]);
            }
            results.push((pair[0].download_mean, pair[1].download_mean)); // (g, n)
        }
        let (hspa_g, hspa_n) = results[0];
        let (lte_g, lte_n) = results[1];
        Report::new(self.id(), "Ablation: Wi-Fi LAN standard (802.11g vs 802.11n)")
            .headers(&["setup", "wifi", "download s", "prebuffer s"])
            .rows(rows)
            .check(
                "HSPA era: LAN never binds",
                "802.11g ≈ 802.11n for HSPA-rate onloading",
                format!("g {} s vs n {} s", secs(hspa_g), secs(hspa_n)),
                (hspa_g / hspa_n - 1.0).abs() < 0.10,
            )
            .check(
                "LTE outlook: 802.11n pays off",
                "an 802.11g LAN caps high-rate aggregation",
                format!("g {} s vs n {} s", secs(lte_g), secs(lte_n)),
                lte_n <= lte_g * 1.02,
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn wifi_ablation_holds() {
        let r = Abl01.run_serial(Scale::new(0.3).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
