//! Fig 11a: CDF over users of the per-video latency improvement
//! `DSL / 3GOL` under a 40 MB daily household budget (two devices ×
//! 20 MB), driven by the DSLAM trace.

use threegol_simnet::stats::Ecdf;
use threegol_traces::analysis::{budgeted_speedup_per_user, BudgetModel};
use threegol_traces::dslam::{DslamTrace, DslamTraceConfig};

use crate::util::{table, Check, Report};

/// Regenerate Fig 11a.
pub fn run(scale: f64) -> Report {
    let n_users = ((18_000.0 * scale) as usize).max(2_000);
    let trace = DslamTrace::generate(DslamTraceConfig { n_users, ..DslamTraceConfig::default() });
    let model = BudgetModel::paper();
    let ratios = budgeted_speedup_per_user(&trace, &model);
    let ecdf = Ecdf::new(ratios);
    let rows: Vec<Vec<String>> = (0..=16)
        .map(|i| {
            let x = 1.0 + i as f64 * 0.1;
            vec![format!("{x:.1}"), format!("{:.3}", ecdf.eval(x))]
        })
        .collect();
    let at_least_20 = ecdf.exceed(1.2);
    let at_least_2 = ecdf.exceed(2.0);
    let checks = vec![
        Check::new(
            "median benefit",
            "50 % of users see at least 20 % speedup",
            format!("P(speedup ≥ 1.2) = {at_least_20:.2}"),
            at_least_20 >= 0.40,
        ),
        Check::new(
            "tail benefit",
            "5 % of users see a speedup of 2",
            format!("P(speedup ≥ 2.0) = {at_least_2:.2}"),
            at_least_2 > 0.01 && at_least_2 < 0.35,
        ),
        Check::new(
            "ratio support",
            "improvements range up to ~2.6 (Fig 11a x-axis)",
            format!("max ratio {:.2}", ecdf.quantile(1.0)),
            ecdf.quantile(1.0) <= 2.65 && ecdf.quantile(0.0) >= 1.0 - 1e-9,
        ),
    ];
    Report {
        id: "fig11a",
        title: "Fig 11a: CDF of DSL/3GOL latency ratio under a 40 MB daily budget",
        body: table(&["speedup ≥", "CDF"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11a_cdf_matches() {
        let r = super::run(0.2);
        assert!(r.all_ok(), "{}", r.render());
    }
}
