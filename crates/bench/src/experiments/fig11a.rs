//! Fig 11a: CDF over users of the per-video latency improvement
//! `DSL / 3GOL` under a 40 MB daily household budget (two devices ×
//! 20 MB), driven by the DSLAM trace.

use threegol_simnet::stats::Ecdf;
use threegol_traces::analysis::{budgeted_speedup_per_user, BudgetModel};
use threegol_traces::dslam::{DslamTrace, DslamTraceConfig};

use crate::experiment::{Experiment, Scale};
use crate::util::Report;

/// The Fig 11a budgeted-speedup experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig11a;

/// One unit: the whole DSLAM population.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Synthetic DSLAM population size at this scale.
    pub n_users: usize,
}

impl Experiment for Fig11a {
    type Unit = Unit;
    type Partial = Report;

    fn id(&self) -> &'static str {
        "fig11a"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 11a"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        vec![Unit { n_users: ((18_000.0 * scale.get()) as usize).max(2_000) }]
    }

    fn run_unit(&self, unit: &Unit) -> Report {
        let trace = DslamTrace::generate(DslamTraceConfig {
            n_users: unit.n_users,
            ..DslamTraceConfig::default()
        });
        let model = BudgetModel::paper();
        let ratios = budgeted_speedup_per_user(&trace, &model);
        let ecdf = Ecdf::new(ratios);
        let rows = (0..=16).map(|i| {
            let x = 1.0 + i as f64 * 0.1;
            vec![format!("{x:.1}"), format!("{:.3}", ecdf.eval(x))]
        });
        let at_least_20 = ecdf.exceed(1.2);
        let at_least_2 = ecdf.exceed(2.0);
        Report::new(self.id(), "Fig 11a: CDF of DSL/3GOL latency ratio under a 40 MB daily budget")
            .headers(&["speedup ≥", "CDF"])
            .rows(rows)
            .check(
                "median benefit",
                "50 % of users see at least 20 % speedup",
                format!("P(speedup ≥ 1.2) = {at_least_20:.2}"),
                at_least_20 >= 0.40,
            )
            .check(
                "tail benefit",
                "5 % of users see a speedup of 2",
                format!("P(speedup ≥ 2.0) = {at_least_2:.2}"),
                at_least_2 > 0.01 && at_least_2 < 0.35,
            )
            .check(
                "ratio support",
                "improvements range up to ~2.6 (Fig 11a x-axis)",
                format!("max ratio {:.2}", ecdf.quantile(1.0)),
                ecdf.quantile(1.0) <= 2.65 && ecdf.quantile(0.0) >= 1.0 - 1e-9,
            )
            .finish()
    }

    fn merge(&self, _scale: Scale, mut partials: Vec<Report>) -> Report {
        partials.pop().expect("one unit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig11a_cdf_matches() {
        let r = Fig11a.run_serial(Scale::new(0.2).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
