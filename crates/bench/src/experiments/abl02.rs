//! Ablation: playout-aware (just-in-time) scheduling — the extension
//! the paper leaves as future work (§4.1.1).
//!
//! The greedy scheduler races the whole video down as fast as possible,
//! burning cellular quota on bytes that would have arrived in time over
//! ADSL anyway. The playout-aware scheduler fetches the pre-buffer at
//! full speed, then gates each segment on its playout deadline minus a
//! fetch-ahead horizon. Measured here: onloaded (cellular) bytes,
//! playout stalls, and startup delay, across horizons.

use threegol_core::home::ADSL_EFFICIENCY;
use threegol_core::vod::VodExperiment;
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;

use crate::experiment::{Experiment, Scale};
use crate::util::{reps, secs, Report};

/// Fetch-ahead horizons for the playout-aware rows (∞ as 1e9).
const HORIZONS: [f64; 3] = [5.0, 15.0, 1e9];

/// The playout-aware scheduling ablation.
#[derive(Debug, Clone, Copy)]
pub struct Abl02;

/// One repetition of one scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// 0 = greedy baseline, 1–3 = playout-aware with `HORIZONS`.
    pub cfg: usize,
    /// Repetition number.
    pub rep: u64,
}

/// One repetition's quota-relevant outcomes.
#[derive(Debug, Clone, Copy)]
pub struct Partial {
    /// Bytes fetched over the cellular paths this rep.
    pub onloaded: f64,
    /// Pre-buffer (startup) time this rep, seconds.
    pub prebuffer_secs: f64,
    /// Number of playout stalls this rep.
    pub stalls: usize,
}

fn experiment_under_test() -> (VodExperiment, f64) {
    let q3 = VideoQuality::paper_ladder().swap_remove(2);
    let location = LocationProfile::reference_2mbps();
    let mut e = VodExperiment::paper_default(location.clone(), q3.clone(), 2);
    e.prebuffer_fraction = 0.2;
    // Conservative startup estimate: the pre-buffer over ADSL alone.
    let prebuffer_bytes = 4.0 * q3.bytes_per_sec() * 10.0;
    let startup_est = prebuffer_bytes * 8.0 / (location.adsl_down_bps * ADSL_EFFICIENCY);
    (e, startup_est)
}

impl Experiment for Abl02 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "abl02"
    }

    fn paper_artifact(&self) -> &'static str {
        "Ablation: playout-aware scheduling"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = reps(10, scale.get());
        (0..4).flat_map(|cfg| (0..n_reps).map(move |rep| Unit { cfg, rep })).collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let (e, startup_est) = experiment_under_test();
        let o = if unit.cfg == 0 {
            e.run_once(unit.rep)
        } else {
            e.run_once_playout_aware(unit.rep, HORIZONS[unit.cfg - 1], startup_est)
        };
        Partial {
            onloaded: o.bytes_per_path.iter().skip(1).sum::<f64>(),
            prebuffer_secs: o.prebuffer_secs,
            stalls: o.playout.stalls.len(),
        }
    }

    fn merge(&self, scale: Scale, partials: Vec<Partial>) -> Report {
        let n_reps = reps(10, scale.get());
        // Accumulate each configuration rep-by-rep in unit order, with
        // the same per-term division the serial loop used, so the
        // floating-point sums match exactly.
        let mut per_cfg = Vec::new();
        for chunk in partials.chunks(n_reps as usize) {
            let mut onloaded = 0.0;
            let mut prebuffer = 0.0;
            let mut stalls = 0usize;
            for p in chunk {
                onloaded += p.onloaded / n_reps as f64;
                prebuffer += p.prebuffer_secs / n_reps as f64;
                stalls += p.stalls;
            }
            per_cfg.push((onloaded, prebuffer, stalls));
        }
        let (greedy_onloaded, greedy_prebuffer, greedy_stalls) = per_cfg[0];
        let mut rows = vec![vec![
            "greedy (paper)".into(),
            "-".into(),
            format!("{:.1}", greedy_onloaded / 1e6),
            secs(greedy_prebuffer),
            greedy_stalls.to_string(),
        ]];
        for (&horizon, &(onloaded, prebuffer, stalls)) in HORIZONS.iter().zip(&per_cfg[1..]) {
            rows.push(vec![
                "playout-aware".into(),
                if horizon > 1e6 { "∞".into() } else { format!("{horizon:.0} s") },
                format!("{:.1}", onloaded / 1e6),
                secs(prebuffer),
                stalls.to_string(),
            ]);
        }
        let (onl_15, pre_15, stalls_15) = per_cfg[2];
        let (onl_inf, _, _) = per_cfg[3];
        Report::new(self.id(), "Ablation: playout-aware (JIT) scheduling vs greedy")
            .headers(&["scheduler", "horizon", "onloaded MB", "prebuffer s", "stalls"])
            .rows(rows)
            .check(
                "JIT slashes cellular usage",
                "deadline gating should onload far fewer bytes than greedy",
                format!(
                    "greedy {:.1} MB vs JIT(15 s) {:.1} MB",
                    greedy_onloaded / 1e6,
                    onl_15 / 1e6
                ),
                onl_15 < greedy_onloaded * 0.6,
            )
            .check(
                "JIT keeps playback smooth",
                "no stalls with a 15 s fetch-ahead horizon",
                format!("{stalls_15} stalls across {n_reps} runs"),
                stalls_15 == 0,
            )
            .check(
                "startup unaffected",
                "pre-buffer still fetched at full 3GOL speed",
                format!("greedy {} s vs JIT {} s", secs(greedy_prebuffer), secs(pre_15)),
                (pre_15 / greedy_prebuffer - 1.0).abs() < 0.25,
            )
            .check(
                "infinite horizon degenerates to greedy",
                "∞ horizon ≈ greedy onloading",
                format!("{:.1} vs {:.1} MB", onl_inf / 1e6, greedy_onloaded / 1e6),
                (onl_inf / greedy_onloaded - 1.0).abs() < 0.35,
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn playout_ablation_holds() {
        let r = Abl02.run_serial(Scale::new(0.3).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
