//! Ablation: playout-aware (just-in-time) scheduling — the extension
//! the paper leaves as future work (§4.1.1).
//!
//! The greedy scheduler races the whole video down as fast as possible,
//! burning cellular quota on bytes that would have arrived in time over
//! ADSL anyway. The playout-aware scheduler fetches the pre-buffer at
//! full speed, then gates each segment on its playout deadline minus a
//! fetch-ahead horizon. Measured here: onloaded (cellular) bytes,
//! playout stalls, and startup delay, across horizons.

use threegol_core::home::ADSL_EFFICIENCY;
use threegol_core::vod::VodExperiment;
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;

use crate::util::{reps, secs, table, Check, Report};

/// Run the playout-aware ablation.
pub fn run(scale: f64) -> Report {
    let n_reps = reps(10, scale);
    let q3 = VideoQuality::paper_ladder().swap_remove(2);
    let location = LocationProfile::reference_2mbps();
    let mut e = VodExperiment::paper_default(location.clone(), q3.clone(), 2);
    e.prebuffer_fraction = 0.2;

    // Conservative startup estimate: the pre-buffer over ADSL alone.
    let prebuffer_bytes = 4.0 * q3.bytes_per_sec() * 10.0;
    let startup_est = prebuffer_bytes * 8.0 / (location.adsl_down_bps * ADSL_EFFICIENCY);

    let mut rows = Vec::new();
    // Greedy baseline.
    let mut greedy_onloaded = 0.0;
    let mut greedy_prebuffer = 0.0;
    let mut greedy_stalls = 0usize;
    for rep in 0..n_reps {
        let o = e.run_once(rep);
        greedy_onloaded += o.bytes_per_path.iter().skip(1).sum::<f64>() / n_reps as f64;
        greedy_prebuffer += o.prebuffer_secs / n_reps as f64;
        greedy_stalls += o.playout.stalls.len();
    }
    rows.push(vec![
        "greedy (paper)".into(),
        "-".into(),
        format!("{:.1}", greedy_onloaded / 1e6),
        secs(greedy_prebuffer),
        greedy_stalls.to_string(),
    ]);

    let mut jit_results = Vec::new();
    for &horizon in &[5.0_f64, 15.0, 1e9] {
        let mut onloaded = 0.0;
        let mut prebuffer = 0.0;
        let mut stalls = 0usize;
        for rep in 0..n_reps {
            let o = e.run_once_playout_aware(rep, horizon, startup_est);
            onloaded += o.bytes_per_path.iter().skip(1).sum::<f64>() / n_reps as f64;
            prebuffer += o.prebuffer_secs / n_reps as f64;
            stalls += o.playout.stalls.len();
        }
        jit_results.push((horizon, onloaded, prebuffer, stalls));
        rows.push(vec![
            "playout-aware".into(),
            if horizon > 1e6 { "∞".into() } else { format!("{horizon:.0} s") },
            format!("{:.1}", onloaded / 1e6),
            secs(prebuffer),
            stalls.to_string(),
        ]);
    }

    let (_, onl_15, pre_15, stalls_15) = jit_results[1];
    let (_, onl_inf, _, _) = jit_results[2];
    let checks = vec![
        Check::new(
            "JIT slashes cellular usage",
            "deadline gating should onload far fewer bytes than greedy",
            format!("greedy {:.1} MB vs JIT(15 s) {:.1} MB", greedy_onloaded / 1e6, onl_15 / 1e6),
            onl_15 < greedy_onloaded * 0.6,
        ),
        Check::new(
            "JIT keeps playback smooth",
            "no stalls with a 15 s fetch-ahead horizon",
            format!("{stalls_15} stalls across {n_reps} runs"),
            stalls_15 == 0,
        ),
        Check::new(
            "startup unaffected",
            "pre-buffer still fetched at full 3GOL speed",
            format!("greedy {} s vs JIT {} s", secs(greedy_prebuffer), secs(pre_15)),
            (pre_15 / greedy_prebuffer - 1.0).abs() < 0.25,
        ),
        Check::new(
            "infinite horizon degenerates to greedy",
            "∞ horizon ≈ greedy onloading",
            format!("{:.1} vs {:.1} MB", onl_inf / 1e6, greedy_onloaded / 1e6),
            (onl_inf / greedy_onloaded - 1.0).abs() < 0.35,
        ),
    ];
    Report {
        id: "abl02",
        title: "Ablation: playout-aware (JIT) scheduling vs greedy",
        body: table(&["scheduler", "horizon", "onloaded MB", "prebuffer s", "stalls"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn playout_ablation_holds() {
        let r = super::run(0.3);
        assert!(r.all_ok(), "{}", r.render());
    }
}
