//! §2.1 back-of-the-envelope: aggregate ADSL vs cellular capacity.

use threegol_core::capacity::CapacityModel;

use crate::util::{close, table, Check, Report};

/// Regenerate the §2.1 numbers.
pub fn run() -> Report {
    let m = CapacityModel::paper();
    let rows = vec![
        vec!["cell area".into(), format!("{:.3} km²", m.cell_area_km2())],
        vec!["subscribers in cell".into(), format!("{:.0}", m.subscribers())],
        vec!["ADSL lines in cell".into(), format!("{:.0}", m.adsl_lines())],
        vec![
            "aggregate ADSL downlink".into(),
            format!("{:.3} Gbit/s", m.adsl_aggregate_dl_bps() / 1e9),
        ],
        vec![
            "aggregate ADSL uplink".into(),
            format!("{:.3} Gbit/s", m.adsl_aggregate_ul_bps() / 1e9),
        ],
        vec!["cell backhaul".into(), format!("{:.0} Mbit/s", m.cell_backhaul_bps / 1e6)],
        vec!["wired/cellular downlink ratio".into(), format!("×{:.0}", m.dl_ratio())],
        vec!["wired/cellular uplink ratio".into(), format!("×{:.1}", m.ul_ratio())],
    ];
    let checks = vec![
        Check::new(
            "subscribers per cell",
            "4375",
            format!("{:.0}", m.subscribers()),
            close(m.subscribers(), 4375.0, 0.02),
        ),
        Check::new(
            "ADSL lines per cell",
            "875",
            format!("{:.0}", m.adsl_lines()),
            close(m.adsl_lines(), 875.0, 0.02),
        ),
        Check::new(
            "aggregate ADSL downlink",
            "5.863 Gbit/s",
            format!("{:.3} Gbit/s", m.adsl_aggregate_dl_bps() / 1e9),
            close(m.adsl_aggregate_dl_bps(), 5.863e9, 0.02),
        ),
        Check::new(
            "capacity gap",
            "1–2 orders of magnitude",
            format!("×{:.0}", m.dl_ratio()),
            m.dl_ratio() >= 10.0 && m.dl_ratio() <= 1000.0,
        ),
    ];
    Report {
        id: "cap02",
        title: "§2.1 back-of-the-envelope capacity comparison",
        body: table(&["quantity", "value"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_paper_numbers() {
        let r = super::run();
        assert!(r.all_ok(), "{}", r.render());
    }
}
