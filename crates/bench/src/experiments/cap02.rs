//! §2.1 back-of-the-envelope: aggregate ADSL vs cellular capacity.

use threegol_core::capacity::CapacityModel;

use crate::experiment::{Experiment, Scale};
use crate::util::{close, Report};

/// The §2.1 capacity-comparison experiment.
#[derive(Debug, Clone, Copy)]
pub struct Cap02;

impl Experiment for Cap02 {
    // Closed-form arithmetic: one unit regenerates everything.
    type Unit = ();
    type Partial = Report;

    fn id(&self) -> &'static str {
        "cap02"
    }

    fn paper_artifact(&self) -> &'static str {
        "§2.1 back-of-the-envelope estimate"
    }

    fn units(&self, _scale: Scale) -> Vec<()> {
        vec![()]
    }

    fn run_unit(&self, _unit: &()) -> Report {
        let m = CapacityModel::paper();
        Report::new(self.id(), "§2.1 back-of-the-envelope capacity comparison")
            .headers(&["quantity", "value"])
            .row(vec!["cell area".into(), format!("{:.3} km²", m.cell_area_km2())])
            .row(vec!["subscribers in cell".into(), format!("{:.0}", m.subscribers())])
            .row(vec!["ADSL lines in cell".into(), format!("{:.0}", m.adsl_lines())])
            .row(vec![
                "aggregate ADSL downlink".into(),
                format!("{:.3} Gbit/s", m.adsl_aggregate_dl_bps() / 1e9),
            ])
            .row(vec![
                "aggregate ADSL uplink".into(),
                format!("{:.3} Gbit/s", m.adsl_aggregate_ul_bps() / 1e9),
            ])
            .row(vec!["cell backhaul".into(), format!("{:.0} Mbit/s", m.cell_backhaul_bps / 1e6)])
            .row(vec!["wired/cellular downlink ratio".into(), format!("×{:.0}", m.dl_ratio())])
            .row(vec!["wired/cellular uplink ratio".into(), format!("×{:.1}", m.ul_ratio())])
            .check(
                "subscribers per cell",
                "4375",
                format!("{:.0}", m.subscribers()),
                close(m.subscribers(), 4375.0, 0.02),
            )
            .check(
                "ADSL lines per cell",
                "875",
                format!("{:.0}", m.adsl_lines()),
                close(m.adsl_lines(), 875.0, 0.02),
            )
            .check(
                "aggregate ADSL downlink",
                "5.863 Gbit/s",
                format!("{:.3} Gbit/s", m.adsl_aggregate_dl_bps() / 1e9),
                close(m.adsl_aggregate_dl_bps(), 5.863e9, 0.02),
            )
            .check(
                "capacity gap",
                "1–2 orders of magnitude",
                format!("×{:.0}", m.dl_ratio()),
                m.dl_ratio() >= 10.0 && m.dl_ratio() <= 1000.0,
            )
            .finish()
    }

    fn merge(&self, _scale: Scale, mut partials: Vec<Report>) -> Report {
        partials.pop().expect("one unit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn reproduces_paper_numbers() {
        let r = Cap02.run_serial(Scale::FULL);
        assert!(r.all_ok(), "{}", r.render());
    }
}
