//! Ablation: the two deployment modes through a subscriber's day.
//!
//! Network-integrated 3GOL (§2.4) is permit-gated by cell load —
//! "offered only when the cellular infrastructure is lightly
//! utilized" — while multi-provider 3GOL (§6) is gated by each
//! device's cap quota. This experiment walks one household through a
//! day of videos under both policies at a congested and a
//! well-provisioned location.

use threegol_core::service::{DayOfVideos, ServicePolicy};
use threegol_hls::VideoQuality;
use threegol_radio::{LocationProfile, Provisioning};

use crate::experiment::{Experiment, Scale};
use crate::util::Report;

/// The deployment-mode ablation. Deterministic per cell; `scale` has
/// no knob here.
#[derive(Debug, Clone, Copy)]
pub struct Abl04;

/// One (service mode, provisioning) day-long walk.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// 0 = network-integrated (§2.4), 1 = multi-provider (§6).
    pub mode: usize,
    /// Cell provisioning at the household's location.
    pub provisioning: Provisioning,
}

/// One walked day: `(hour, phones_used, speedup)` per video.
pub type Partial = Vec<(f64, usize, f64)>;

fn mode_label(mode: usize) -> &'static str {
    ["integrated", "multi-provider"][mode]
}

impl Experiment for Abl04 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "abl04"
    }

    fn paper_artifact(&self) -> &'static str {
        "Ablation: deployment modes (§2.4 vs §6)"
    }

    fn units(&self, _scale: Scale) -> Vec<Unit> {
        (0..2)
            .flat_map(|mode| {
                [Provisioning::Well, Provisioning::Congested]
                    .into_iter()
                    .map(move |provisioning| Unit { mode, provisioning })
            })
            .collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let hours = [4.0, 9.0, 12.0, 15.0, 19.0, 21.0];
        let policy = match unit.mode {
            0 => ServicePolicy::network_integrated(),
            _ => ServicePolicy::multi_provider(),
        };
        let mut location = LocationProfile::reference_2mbps();
        location.provisioning = unit.provisioning;
        let day = DayOfVideos {
            location,
            quality: VideoQuality::paper_ladder().swap_remove(3),
            n_phones: 2,
            policy,
            seed: 0xAB14,
        };
        day.run(&hours).iter().map(|v| (v.hour, v.phones_used, v.speedup())).collect()
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        let mut rows = Vec::new();
        let mut peak_denied_congested = false;
        let mut night_granted_congested = false;
        let mut well_always_granted = true;
        let mut quota_exhausts = false;
        let mut days = partials.into_iter();
        for mode in 0..2 {
            for provisioning in [Provisioning::Well, Provisioning::Congested] {
                let videos = days.next().expect("one day per unit");
                for (hour, phones_used, speedup) in videos {
                    if mode == 0 && provisioning == Provisioning::Congested {
                        if hour == 19.0 && phones_used == 0 {
                            peak_denied_congested = true;
                        }
                        if hour == 4.0 && phones_used == 2 {
                            night_granted_congested = true;
                        }
                    }
                    if mode == 0 && provisioning == Provisioning::Well && phones_used != 2 {
                        well_always_granted = false;
                    }
                    if mode == 1 && phones_used == 0 {
                        quota_exhausts = true;
                    }
                    rows.push(vec![
                        mode_label(mode).to_string(),
                        format!("{provisioning:?}"),
                        format!("{hour:02.0}:00"),
                        phones_used.to_string(),
                        format!("×{speedup:.2}"),
                    ]);
                }
            }
        }
        Report::new(
            self.id(),
            "Ablation: network-integrated (permits) vs multi-provider (caps) over a day",
        )
        .headers(&["mode", "provisioning", "hour", "phones", "speedup"])
        .rows(rows)
        .check(
            "congested peak denies permits",
            "transmission denied when utilization above threshold",
            format!("peak denial observed: {peak_denied_congested}"),
            peak_denied_congested,
        )
        .check(
            "night grants permits",
            "off-peak capacity is offered to 3GOL",
            format!("night grant observed: {night_granted_congested}"),
            night_granted_congested,
        )
        .check(
            "well-provisioned cells boost all day",
            "some cells have leftover capacity even during peak hours",
            format!("always granted: {well_always_granted}"),
            well_always_granted,
        )
        .check(
            "caps eventually bind",
            "multi-provider quota exhausts within a heavy day",
            format!("exhaustion observed: {quota_exhausts}"),
            quota_exhausts,
        )
        .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn deployment_mode_ablation_holds() {
        let r = Abl04.run_serial(Scale::new(0.5).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
