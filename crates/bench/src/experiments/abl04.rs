//! Ablation: the two deployment modes through a subscriber's day.
//!
//! Network-integrated 3GOL (§2.4) is permit-gated by cell load —
//! "offered only when the cellular infrastructure is lightly
//! utilized" — while multi-provider 3GOL (§6) is gated by each
//! device's cap quota. This experiment walks one household through a
//! day of videos under both policies at a congested and a
//! well-provisioned location.

use threegol_core::service::{DayOfVideos, ServicePolicy};
use threegol_hls::VideoQuality;
use threegol_radio::{LocationProfile, Provisioning};

use crate::util::{table, Check, Report};

/// Run the deployment-mode ablation.
pub fn run(_scale: f64) -> Report {
    let hours = [4.0, 9.0, 12.0, 15.0, 19.0, 21.0];
    let quality = VideoQuality::paper_ladder().swap_remove(3);
    let mut rows = Vec::new();
    let mut peak_denied_congested = false;
    let mut night_granted_congested = false;
    let mut well_always_granted = true;
    let mut quota_exhausts = false;
    for (mode_label, policy) in [
        ("integrated", ServicePolicy::network_integrated()),
        ("multi-provider", ServicePolicy::multi_provider()),
    ] {
        for provisioning in [Provisioning::Well, Provisioning::Congested] {
            let mut location = LocationProfile::reference_2mbps();
            location.provisioning = provisioning;
            let day = DayOfVideos {
                location,
                quality: quality.clone(),
                n_phones: 2,
                policy: policy.clone(),
                seed: 0xAB14,
            };
            let videos = day.run(&hours);
            for v in &videos {
                if mode_label == "integrated" && provisioning == Provisioning::Congested {
                    if v.hour == 19.0 && v.phones_used == 0 {
                        peak_denied_congested = true;
                    }
                    if v.hour == 4.0 && v.phones_used == 2 {
                        night_granted_congested = true;
                    }
                }
                if mode_label == "integrated"
                    && provisioning == Provisioning::Well
                    && v.phones_used != 2
                {
                    well_always_granted = false;
                }
                if mode_label == "multi-provider" && v.phones_used == 0 {
                    quota_exhausts = true;
                }
                rows.push(vec![
                    mode_label.to_string(),
                    format!("{provisioning:?}"),
                    format!("{:02.0}:00", v.hour),
                    v.phones_used.to_string(),
                    format!("×{:.2}", v.speedup()),
                ]);
            }
        }
    }
    let checks = vec![
        Check::new(
            "congested peak denies permits",
            "transmission denied when utilization above threshold",
            format!("peak denial observed: {peak_denied_congested}"),
            peak_denied_congested,
        ),
        Check::new(
            "night grants permits",
            "off-peak capacity is offered to 3GOL",
            format!("night grant observed: {night_granted_congested}"),
            night_granted_congested,
        ),
        Check::new(
            "well-provisioned cells boost all day",
            "some cells have leftover capacity even during peak hours",
            format!("always granted: {well_always_granted}"),
            well_always_granted,
        ),
        Check::new(
            "caps eventually bind",
            "multi-provider quota exhausts within a heavy day",
            format!("exhaustion observed: {quota_exhausts}"),
            quota_exhausts,
        ),
    ];
    Report {
        id: "abl04",
        title: "Ablation: network-integrated (permits) vs multi-provider (caps) over a day",
        body: table(&["mode", "provisioning", "hour", "phones", "speedup"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn deployment_mode_ablation_holds() {
        let r = super::run(0.5);
        assert!(r.all_ok(), "{}", r.render());
    }
}
