//! One module per reproduced table/figure.

pub mod abl01;
pub mod abl02;
pub mod abl03;
pub mod abl04;
pub mod abl05;
pub mod cap02;
pub mod est06;
pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11a;
pub mod fig11b;
pub mod fig11c;
pub mod tab02;
pub mod tab03;
pub mod tab04;
