//! Fig 5: distribution of the single-device throughput served per base
//! station at each location over five days (the paper's violin plots;
//! we report quantiles). The solid reference lines in the paper are
//! the dedicated-channel rates: 360 kbit/s down, 64 kbit/s up.

use threegol_measure::{Campaign, Direction};
use threegol_radio::consts::{UMTS_DEDICATED_DL_BPS, UMTS_DEDICATED_UL_BPS};
use threegol_radio::LocationProfile;
use threegol_simnet::stats::percentile;

use crate::experiment::{Experiment, Scale};
use crate::util::{mbps, Report};

/// The Fig 5 per-station distribution experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig05;

/// One (location, direction) cell: every station's sample set there.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Index into the six Table 2 locations.
    pub li: usize,
    /// Probe direction for this cell.
    pub dir: Direction,
    /// Number of measurement days.
    pub days: u64,
    /// Whether to probe all 24 hours or every sixth.
    pub all_hours: bool,
}

/// Per-station quantile rows plus the raw samples for the pooled checks.
#[derive(Debug, Clone)]
pub struct Partial {
    /// Preformatted table rows, one per base station.
    pub rows: Vec<Vec<String>>,
    /// All samples of this cell concatenated in station order.
    pub vals: Vec<f64>,
    /// True when this cell probed the downlink.
    pub is_down: bool,
}

impl Experiment for Fig05 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "fig05"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 5"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let days = if scale.get() >= 0.8 { 5 } else { 2 };
        let all_hours = scale.get() >= 0.8;
        (0..LocationProfile::paper_table2().len())
            .flat_map(|li| {
                [Direction::Down, Direction::Up].into_iter().map(move |dir| Unit {
                    li,
                    dir,
                    days,
                    all_hours,
                })
            })
            .collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let hours: Vec<f64> = if unit.all_hours {
            (0..24).map(|h| h as f64).collect()
        } else {
            (0..24).step_by(6).map(|h| h as f64).collect()
        };
        let loc = LocationProfile::paper_table2().into_iter().nth(unit.li).expect("location");
        let campaign = Campaign::new(loc.clone(), 0xF165 + unit.li as u64);
        let label = match unit.dir {
            Direction::Down => "dl",
            Direction::Up => "ul",
        };
        let samples = campaign.per_station_samples(&hours, unit.days, unit.dir);
        let mut rows = Vec::new();
        let mut all: Vec<f64> = Vec::new();
        for station in 0..loc.n_base_stations {
            let vals: Vec<f64> =
                samples.iter().filter(|&&(s, _)| s == station).map(|&(_, v)| v).collect();
            all.extend(&vals);
            rows.push(vec![
                format!("loc{}", unit.li + 1),
                format!("bs{station}"),
                label.to_string(),
                mbps(percentile(&vals, 0.05)),
                mbps(percentile(&vals, 0.25)),
                mbps(percentile(&vals, 0.50)),
                mbps(percentile(&vals, 0.75)),
                mbps(percentile(&vals, 0.95)),
            ]);
        }
        Partial { rows, vals: all, is_down: matches!(unit.dir, Direction::Down) }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        // Pool the samples in unit order (locations outer, dl before
        // ul) so the quantiles match the serial sweep bit-for-bit.
        let mut all_dl: Vec<f64> = Vec::new();
        let mut all_ul: Vec<f64> = Vec::new();
        let mut report =
            Report::new(self.id(), "Fig 5: per-base-station single-device throughput quantiles")
                .headers(&["location", "station", "dir", "p5", "p25", "p50", "p75", "p95"]);
        for p in partials {
            if p.is_down {
                all_dl.extend(&p.vals);
            } else {
                all_ul.extend(&p.vals);
            }
            report = report.rows(p.rows);
        }
        let dl_med = percentile(&all_dl, 0.5);
        let ul_med = percentile(&all_ul, 0.5);
        let dl_hi = percentile(&all_dl, 0.95);
        report
            .check(
                "range of per-cell service",
                "base stations provide ~0.7–2.5 Mbit/s in both directions",
                format!("median dl {} / ul {} Mbit/s", mbps(dl_med), mbps(ul_med)),
                dl_med > 0.5e6 && dl_med < 3.0e6 && ul_med > 0.4e6 && ul_med < 2.5e6,
            )
            .check(
                "HSPA above dedicated channels",
                "shared-channel rates exceed 360/64 kbit/s dedicated lines",
                format!("p95 dl {} Mbit/s", mbps(dl_hi)),
                dl_med > UMTS_DEDICATED_DL_BPS && ul_med > UMTS_DEDICATED_UL_BPS,
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig5_shape_holds() {
        let r = Fig05.run_serial(Scale::new(0.2).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
