//! Fig 5: distribution of the single-device throughput served per base
//! station at each location over five days (the paper's violin plots;
//! we report quantiles). The solid reference lines in the paper are
//! the dedicated-channel rates: 360 kbit/s down, 64 kbit/s up.

use threegol_measure::{Campaign, Direction};
use threegol_radio::consts::{UMTS_DEDICATED_DL_BPS, UMTS_DEDICATED_UL_BPS};
use threegol_radio::LocationProfile;
use threegol_simnet::stats::percentile;

use crate::util::{mbps, table, Check, Report};

/// Regenerate the Fig 5 distributions (per-station quantiles).
pub fn run(scale: f64) -> Report {
    let days = if scale >= 0.8 { 5 } else { 2 };
    let hours: Vec<f64> = if scale >= 0.8 {
        (0..24).map(|h| h as f64).collect()
    } else {
        (0..24).step_by(6).map(|h| h as f64).collect()
    };
    let locations = LocationProfile::paper_table2();
    let mut rows = Vec::new();
    let mut all_dl: Vec<f64> = Vec::new();
    let mut all_ul: Vec<f64> = Vec::new();
    for (li, loc) in locations.iter().enumerate() {
        let campaign = Campaign::new(loc.clone(), 0xF165 + li as u64);
        for (dir, label) in [(Direction::Down, "dl"), (Direction::Up, "ul")] {
            let samples = campaign.per_station_samples(&hours, days, dir);
            for station in 0..loc.n_base_stations {
                let vals: Vec<f64> =
                    samples.iter().filter(|&&(s, _)| s == station).map(|&(_, v)| v).collect();
                match dir {
                    Direction::Down => all_dl.extend(&vals),
                    Direction::Up => all_ul.extend(&vals),
                }
                rows.push(vec![
                    format!("loc{}", li + 1),
                    format!("bs{station}"),
                    label.to_string(),
                    mbps(percentile(&vals, 0.05)),
                    mbps(percentile(&vals, 0.25)),
                    mbps(percentile(&vals, 0.50)),
                    mbps(percentile(&vals, 0.75)),
                    mbps(percentile(&vals, 0.95)),
                ]);
            }
        }
    }
    let dl_med = percentile(&all_dl, 0.5);
    let ul_med = percentile(&all_ul, 0.5);
    let dl_hi = percentile(&all_dl, 0.95);
    let checks = vec![
        Check::new(
            "range of per-cell service",
            "base stations provide ~0.7–2.5 Mbit/s in both directions",
            format!("median dl {} / ul {} Mbit/s", mbps(dl_med), mbps(ul_med)),
            dl_med > 0.5e6 && dl_med < 3.0e6 && ul_med > 0.4e6 && ul_med < 2.5e6,
        ),
        Check::new(
            "HSPA above dedicated channels",
            "shared-channel rates exceed 360/64 kbit/s dedicated lines",
            format!("p95 dl {} Mbit/s", mbps(dl_hi)),
            dl_med > UMTS_DEDICATED_DL_BPS && ul_med > UMTS_DEDICATED_UL_BPS,
        ),
    ];
    Report {
        id: "fig05",
        title: "Fig 5: per-base-station single-device throughput quantiles",
        body: table(&["location", "station", "dir", "p5", "p25", "p50", "p75", "p95"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig5_shape_holds() {
        let r = super::run(0.2);
        assert!(r.all_ok(), "{}", r.render());
    }
}
