//! Table 4: the five "in the wild" evaluation locations — measured
//! ADSL speeds and 3G signal strength — plus, from the model, the
//! single-device 3G throughput each location supports.

use threegol_measure::{Campaign, Direction};
use threegol_radio::consts::dbm_to_asu;
use threegol_radio::LocationProfile;

use crate::util::{mbps, reps, table, Check, Report};

/// Regenerate Table 4 (augmented with modeled single-device rates).
pub fn run(scale: f64) -> Report {
    let n_reps = reps(6, scale);
    let locations = LocationProfile::paper_table4();
    let mut rows = Vec::new();
    let mut best_signal_dl = 0.0_f64;
    let mut worst_signal_dl = f64::INFINITY;
    for (li, loc) in locations.iter().enumerate() {
        let campaign = Campaign::new(loc.clone(), 0x7AB4 + li as u64);
        let dl = campaign.aggregate_throughput(1, 9.0, Direction::Down, n_reps).mean;
        if loc.signal_dbm >= -85.0 {
            best_signal_dl = best_signal_dl.max(dl);
        }
        if loc.signal_dbm <= -95.0 {
            worst_signal_dl = worst_signal_dl.min(dl);
        }
        rows.push(vec![
            loc.name.clone(),
            format!("{}/{}", mbps(loc.adsl_down_bps), mbps(loc.adsl_up_bps)),
            format!("{:.0}/{:.0}", loc.signal_dbm, dbm_to_asu(loc.signal_dbm)),
            mbps(dl),
        ]);
    }
    let checks = vec![
        Check::new(
            "ADSL speeds reproduced",
            "6.48/0.83 … 21.64/2.77 Mbit/s (Table 4)",
            format!(
                "loc1 {} / loc2 {} Mbit/s down",
                mbps(locations[0].adsl_down_bps),
                mbps(locations[1].adsl_down_bps)
            ),
            locations[0].adsl_down_bps == 6.48e6 && locations[1].adsl_down_bps == 21.64e6,
        ),
        Check::new(
            "signal affects 3G rate",
            "weak-signal locations (−95/−97 dBm) see lower 3G rates",
            format!("strong {} vs weak {} Mbit/s", mbps(best_signal_dl), mbps(worst_signal_dl)),
            best_signal_dl > worst_signal_dl,
        ),
    ];
    Report {
        id: "tab04",
        title: "Table 4: evaluation locations (ADSL speed, 3G signal, modeled 1-device dl)",
        body: table(
            &["location", "DSL Mbit/s (d/u)", "signal dBm/ASU", "1-device 3G dl Mbit/s"],
            &rows,
        ),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table4_reproduced() {
        let r = super::run(0.5);
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 5);
    }
}
