//! Table 4: the five "in the wild" evaluation locations — measured
//! ADSL speeds and 3G signal strength — plus, from the model, the
//! single-device 3G throughput each location supports.

use threegol_measure::{Campaign, Direction};
use threegol_radio::consts::dbm_to_asu;
use threegol_radio::LocationProfile;

use crate::experiment::{Experiment, Scale};
use crate::util::{mbps, reps, Report};

/// The Table 4 reproduction experiment.
#[derive(Debug, Clone, Copy)]
pub struct Tab04;

/// One evaluation location.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Index into the five Table 4 locations.
    pub li: usize,
    /// Repetitions per measurement.
    pub n_reps: u64,
}

/// One location's modeled single-device downlink.
#[derive(Debug, Clone, Copy)]
pub struct Partial {
    /// Mean single-device 3G downlink, bits/s.
    pub dl: f64,
}

impl Experiment for Tab04 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "tab04"
    }

    fn paper_artifact(&self) -> &'static str {
        "Table 4"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = reps(6, scale.get());
        (0..LocationProfile::paper_table4().len()).map(|li| Unit { li, n_reps }).collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let loc = LocationProfile::paper_table4().into_iter().nth(unit.li).expect("location");
        let campaign = Campaign::new(loc, 0x7AB4 + unit.li as u64);
        Partial { dl: campaign.aggregate_throughput(1, 9.0, Direction::Down, unit.n_reps).mean }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        let locations = LocationProfile::paper_table4();
        let mut rows = Vec::new();
        let mut best_signal_dl = 0.0_f64;
        let mut worst_signal_dl = f64::INFINITY;
        for (loc, p) in locations.iter().zip(&partials) {
            if loc.signal_dbm >= -85.0 {
                best_signal_dl = best_signal_dl.max(p.dl);
            }
            if loc.signal_dbm <= -95.0 {
                worst_signal_dl = worst_signal_dl.min(p.dl);
            }
            rows.push(vec![
                loc.name.clone(),
                format!("{}/{}", mbps(loc.adsl_down_bps), mbps(loc.adsl_up_bps)),
                format!("{:.0}/{:.0}", loc.signal_dbm, dbm_to_asu(loc.signal_dbm)),
                mbps(p.dl),
            ]);
        }
        Report::new(
            self.id(),
            "Table 4: evaluation locations (ADSL speed, 3G signal, modeled 1-device dl)",
        )
        .headers(&["location", "DSL Mbit/s (d/u)", "signal dBm/ASU", "1-device 3G dl Mbit/s"])
        .rows(rows)
        .check(
            "ADSL speeds reproduced",
            "6.48/0.83 … 21.64/2.77 Mbit/s (Table 4)",
            format!(
                "loc1 {} / loc2 {} Mbit/s down",
                mbps(locations[0].adsl_down_bps),
                mbps(locations[1].adsl_down_bps)
            ),
            locations[0].adsl_down_bps == 6.48e6 && locations[1].adsl_down_bps == 21.64e6,
        )
        .check(
            "signal affects 3G rate",
            "weak-signal locations (−95/−97 dBm) see lower 3G rates",
            format!("strong {} vs weak {} Mbit/s", mbps(best_signal_dl), mbps(worst_signal_dl)),
            best_signal_dl > worst_signal_dl,
        )
        .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn table4_reproduced() {
        let r = Tab04.run_serial(Scale::new(0.5).unwrap());
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 5);
    }
}
