//! §6's allowance estimator evaluation: rolling
//! `3GOLa(t) = F̄u(t) − α·σ̄u(t)` over the MNO trace, sweeping the
//! guard α. The paper: "using τ = 5 and choosing α = 4 allows around
//! 65 % of the available free capacity to be used by 3GOL with
//! expected overrun time of under 1 day per month".

use threegol_caps::{evaluate_estimator, AllowanceEstimator, QuantileEstimator};
use threegol_traces::mno::{MnoConfig, MnoTrace};

use crate::util::{table, Check, Report};

/// Regenerate the estimator evaluation.
pub fn run(scale: f64) -> Report {
    let n_users = ((20_000.0 * scale) as usize).max(2_000);
    let trace = MnoTrace::generate(MnoConfig { n_users, n_months: 18, ..MnoConfig::default() });
    let series = trace.free_series();
    let mut rows = Vec::new();
    let mut paper_point = None;
    for &alpha in &[0.0, 1.0, 2.0, 4.0, 6.0, 8.0] {
        let est = AllowanceEstimator::new(5, alpha);
        let ev = evaluate_estimator(&est, &series);
        if alpha == 4.0 {
            paper_point = Some(ev);
        }
        rows.push(vec![
            format!("{alpha:.0}"),
            format!("{:.1}%", ev.free_capacity_used * 100.0),
            format!("{:.2}", ev.mean_overrun_days),
            format!("{:.1}%", ev.overrun_month_fraction * 100.0),
        ]);
    }
    // Alternative rule for comparison: allowance = window minimum.
    for &q in &[0.0, 0.25] {
        let est = QuantileEstimator::new(5, q);
        let ev = evaluate_estimator(&est, &series);
        rows.push(vec![
            format!("P{:.0}", q * 100.0),
            format!("{:.1}%", ev.free_capacity_used * 100.0),
            format!("{:.2}", ev.mean_overrun_days),
            format!("{:.1}%", ev.overrun_month_fraction * 100.0),
        ]);
    }
    let ev = paper_point.expect("alpha=4 evaluated");
    let checks = vec![
        Check::new(
            "utilization at τ=5, α=4",
            "~65 % of available free capacity usable",
            format!("{:.0}%", ev.free_capacity_used * 100.0),
            ev.free_capacity_used > 0.45 && ev.free_capacity_used < 0.85,
        ),
        Check::new(
            "overrun at τ=5, α=4",
            "expected overrun under 1 day per month",
            format!("{:.2} days/month", ev.mean_overrun_days),
            ev.mean_overrun_days < 1.0,
        ),
    ];
    Report {
        id: "est06",
        title: "§6 allowance estimator: guard sweep (τ = 5)",
        body: table(
            &[
                "rule (α or quantile)",
                "free capacity used",
                "overrun days/month",
                "months with overrun",
            ],
            &rows,
        ),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn estimator_matches_paper_point() {
        let r = super::run(0.25);
        assert!(r.all_ok(), "{}", r.render());
    }
}
