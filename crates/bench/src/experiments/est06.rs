//! §6's allowance estimator evaluation: rolling
//! `3GOLa(t) = F̄u(t) − α·σ̄u(t)` over the MNO trace, sweeping the
//! guard α. The paper: "using τ = 5 and choosing α = 4 allows around
//! 65 % of the available free capacity to be used by 3GOL with
//! expected overrun time of under 1 day per month".

use threegol_caps::{evaluate_estimator, AllowanceEstimator, QuantileEstimator};
use threegol_traces::mno::{MnoConfig, MnoTrace};

use crate::experiment::{Experiment, Scale};
use crate::util::Report;

/// The §6 allowance-estimator experiment.
#[derive(Debug, Clone, Copy)]
pub struct Est06;

/// One unit: every estimator rule evaluated over one generated trace
/// (splitting per rule would regenerate the 18-month trace per unit,
/// costing more than it parallelizes).
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Synthetic MNO population size at this scale.
    pub n_users: usize,
}

impl Experiment for Est06 {
    type Unit = Unit;
    type Partial = Report;

    fn id(&self) -> &'static str {
        "est06"
    }

    fn paper_artifact(&self) -> &'static str {
        "§6 allowance estimator"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        vec![Unit { n_users: ((20_000.0 * scale.get()) as usize).max(2_000) }]
    }

    fn run_unit(&self, unit: &Unit) -> Report {
        let trace = MnoTrace::generate(MnoConfig {
            n_users: unit.n_users,
            n_months: 18,
            ..MnoConfig::default()
        });
        let series = trace.free_series();
        let mut report = Report::new(self.id(), "§6 allowance estimator: guard sweep (τ = 5)")
            .headers(&[
                "rule (α or quantile)",
                "free capacity used",
                "overrun days/month",
                "months with overrun",
            ]);
        let mut paper_point = None;
        for &alpha in &[0.0, 1.0, 2.0, 4.0, 6.0, 8.0] {
            let est = AllowanceEstimator::new(5, alpha);
            let ev = evaluate_estimator(&est, &series);
            if alpha == 4.0 {
                paper_point = Some(ev);
            }
            report = report.row(vec![
                format!("{alpha:.0}"),
                format!("{:.1}%", ev.free_capacity_used * 100.0),
                format!("{:.2}", ev.mean_overrun_days),
                format!("{:.1}%", ev.overrun_month_fraction * 100.0),
            ]);
        }
        // Alternative rule for comparison: allowance = window minimum.
        for &q in &[0.0, 0.25] {
            let est = QuantileEstimator::new(5, q);
            let ev = evaluate_estimator(&est, &series);
            report = report.row(vec![
                format!("P{:.0}", q * 100.0),
                format!("{:.1}%", ev.free_capacity_used * 100.0),
                format!("{:.2}", ev.mean_overrun_days),
                format!("{:.1}%", ev.overrun_month_fraction * 100.0),
            ]);
        }
        let ev = paper_point.expect("alpha=4 evaluated");
        report
            .check(
                "utilization at τ=5, α=4",
                "~65 % of available free capacity usable",
                format!("{:.0}%", ev.free_capacity_used * 100.0),
                ev.free_capacity_used > 0.45 && ev.free_capacity_used < 0.85,
            )
            .check(
                "overrun at τ=5, α=4",
                "expected overrun under 1 day per month",
                format!("{:.2} days/month", ev.mean_overrun_days),
                ev.mean_overrun_days < 1.0,
            )
            .finish()
    }

    fn merge(&self, _scale: Scale, mut partials: Vec<Report>) -> Report {
        partials.pop().expect("one unit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn estimator_matches_paper_point() {
        let r = Est06.run_serial(Scale::new(0.25).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
