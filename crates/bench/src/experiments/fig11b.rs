//! Fig 11b: traffic onloaded onto the cellular network over the day
//! (5-minute bins), with and without the daily budget, against the
//! covering backhaul capacity (2 towers × 40 Mbit/s).

use threegol_traces::analysis::{cell_load, BudgetModel};
use threegol_traces::dslam::{DslamTrace, DslamTraceConfig};

use crate::experiment::{Experiment, Scale};
use crate::util::Report;

/// The Fig 11b cell-load experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig11b;

/// One unit: the whole DSLAM population.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Synthetic DSLAM population size at this scale.
    pub n_users: usize,
}

impl Experiment for Fig11b {
    type Unit = Unit;
    type Partial = Report;

    fn id(&self) -> &'static str {
        "fig11b"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 11b"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        vec![Unit { n_users: ((18_000.0 * scale.get()) as usize).max(2_000) }]
    }

    /// Reported in 30-minute steps for readability; the computation
    /// uses 5-minute bins as in the paper.
    fn run_unit(&self, unit: &Unit) -> Report {
        let trace = DslamTrace::generate(DslamTraceConfig {
            n_users: unit.n_users,
            ..DslamTraceConfig::default()
        });
        // Scale the per-user results to the full DSLAM population where
        // needed: loads are population-proportional, so compute on the
        // generated population and scale to 18 000 users.
        let pop_scale = 18_000.0 / unit.n_users as f64;
        let model = BudgetModel::paper();
        let load = cell_load(&trace, &model, 2.0 * 40e6);
        let rows = (0..48).map(|i| {
            let bin = i * 6; // every 30 min
            let h = bin as f64 * 300.0 / 3600.0;
            vec![
                format!("{:02.0}:{:02.0}", h.floor(), (h.fract() * 60.0).round()),
                format!("{:.1}", load.capped_bps[bin] * pop_scale / 1e6),
                format!("{:.1}", load.uncapped_bps[bin] * pop_scale / 1e6),
            ]
        });
        let peak_capped = load.capped_bps.iter().cloned().fold(0.0, f64::max) * pop_scale;
        let peak_uncapped = load.uncapped_bps.iter().cloned().fold(0.0, f64::max) * pop_scale;
        let mean_onloaded_mb = load.mean_onloaded_per_user_bytes / 1e6;
        Report::new(self.id(), "Fig 11b: onloaded cellular load (Mbit/s, scaled to 18k DSL lines)")
            .headers(&["time", "capped Mbit/s", "uncapped Mbit/s"])
            .rows(rows.collect::<Vec<_>>())
            .check(
                "uncapped overload",
                "without caps the 3G network is guaranteed to be overloaded",
                format!(
                    "peak uncapped {:.0} Mbit/s vs backhaul {:.0} Mbit/s",
                    peak_uncapped / 1e6,
                    load.backhaul_bps / 1e6
                ),
                peak_uncapped > load.backhaul_bps,
            )
            .check(
                "capped load is reasonable",
                "within caps the additional load could be reasonable",
                format!("peak capped {:.0} Mbit/s", peak_capped / 1e6),
                peak_capped < peak_uncapped * 0.8,
            )
            .check(
                "mean onloaded volume",
                "29.78 MB per user per day with caps",
                format!("{mean_onloaded_mb:.1} MB"),
                (mean_onloaded_mb - 29.78).abs() < 8.0,
            )
            .finish()
    }

    fn merge(&self, _scale: Scale, mut partials: Vec<Report>) -> Report {
        partials.pop().expect("one unit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig11b_loads_match() {
        let r = Fig11b.run_serial(Scale::new(0.2).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
