//! Fig 6: scheduler comparison downloading the 200 s HLS video over a
//! 2 Mbit/s ADSL line with one and two phones, at 1 am (the paper's
//! low-interference window): ADSL alone vs 3GOL with MIN, RR and GRD.

use threegol_core::vod::{VodExperiment, VodOutcome, VodSummary};
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;
use threegol_sched::Policy;

use crate::experiment::{Experiment, Scale};
use crate::util::{reps, secs, Report};

/// Scheduler configurations in column order: ADSL alone, then the
/// three policies with one phone, then with two.
const CONFIGS: usize = 7;

/// The Fig 6 scheduler-comparison experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig06;

/// One repetition of one (quality, configuration) cell.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Quality index into the paper ladder (0–3).
    pub qi: usize,
    /// Configuration index (0 = ADSL, 1–3 = MIN/RR/GRD 1 phone,
    /// 4–6 = MIN/RR/GRD 2 phones).
    pub cfg: usize,
    /// Repetition number; seeds the stochastic conditions.
    pub rep: u64,
}

fn config(base: &VodExperiment, cfg: usize) -> VodExperiment {
    let mut e = base.clone();
    if cfg == 0 {
        return e;
    }
    e.n_phones = if cfg <= 3 { 1 } else { 2 };
    e.policy = match (cfg - 1) % 3 {
        0 => Policy::min_time_paper(),
        1 => Policy::RoundRobin,
        _ => Policy::Greedy,
    };
    e
}

fn config_label(cfg: usize) -> &'static str {
    ["ADSL", "MIN", "RR", "GRD", "MIN", "RR", "GRD"][cfg]
}

impl Experiment for Fig06 {
    type Unit = Unit;
    type Partial = VodOutcome;

    fn id(&self) -> &'static str {
        "fig06"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 6"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = reps(30, scale.get());
        (0..4)
            .flat_map(|qi| {
                (0..CONFIGS).flat_map(move |cfg| (0..n_reps).map(move |rep| Unit { qi, cfg, rep }))
            })
            .collect()
    }

    fn run_unit(&self, unit: &Unit) -> VodOutcome {
        let ladder = VideoQuality::paper_ladder();
        let mut base = VodExperiment::paper_default(
            LocationProfile::reference_2mbps(),
            ladder[unit.qi].clone(),
            0,
        );
        base.hour = 1.0; // the paper starts the comparison at 1:00 am
        config(&base, unit.cfg).run_once(unit.rep)
    }

    fn merge(&self, scale: Scale, partials: Vec<VodOutcome>) -> Report {
        let n_reps = reps(30, scale.get()) as usize;
        // Partials arrive in unit order, so each (quality, config)
        // cell is a contiguous rep-ordered chunk; summarizing a chunk
        // reproduces `run_mean` exactly.
        let mut cells = partials.chunks(n_reps);
        let mut rows = Vec::new();
        // grd/min means for the ordering checks, per phone count.
        let mut means: std::collections::HashMap<(usize, &'static str, usize), f64> =
            std::collections::HashMap::new();
        let mut adsl_q1 = 0.0;
        let mut adsl_q4 = 0.0;
        for qi in 0..4 {
            let ladder = VideoQuality::paper_ladder();
            let mut row = vec![ladder[qi].label.clone()];
            for cfg in 0..CONFIGS {
                let s = VodSummary::from_outcomes(cells.next().expect("cell chunk"));
                if cfg == 0 {
                    if qi == 0 {
                        adsl_q1 = s.download.mean;
                    }
                    if qi == 3 {
                        adsl_q4 = s.download.mean;
                    }
                } else {
                    let n_phones = if cfg <= 3 { 1 } else { 2 };
                    means.insert((qi, config_label(cfg), n_phones), s.download.mean);
                }
                row.push(format!("{}±{}", secs(s.download.mean), secs(s.download.sd)));
            }
            rows.push(row);
        }
        // Ordering check averaged over qualities.
        let avg = |label: &'static str, phones: usize| -> f64 {
            (0..4).map(|q| means[&(q, label, phones)]).sum::<f64>() / 4.0
        };
        let (grd1, rr1, min1) = (avg("GRD", 1), avg("RR", 1), avg("MIN", 1));
        let grd2 = avg("GRD", 2);
        Report::new(
            self.id(),
            "Fig 6: scheduler comparison, HLS 200 s video on 2 Mbit/s ADSL (download s)",
        )
        .headers(&[
            "quality", "ADSL", "MIN 1ph", "RR 1ph", "GRD 1ph", "MIN 2ph", "RR 2ph", "GRD 2ph",
        ])
        .rows(rows)
        .check(
            "ADSL-only Q1 download",
            "41 s",
            format!("{} s", secs(adsl_q1)),
            adsl_q1 > 30.0 && adsl_q1 < 55.0,
        )
        .check(
            "ADSL-only Q4 download",
            "127 s",
            format!("{} s", secs(adsl_q4)),
            adsl_q4 > 100.0 && adsl_q4 < 150.0,
        )
        .check(
            "scheduler ordering (1 phone)",
            "GRD best, then RR, MIN worst",
            format!("GRD {} ≤ RR {} ≤ MIN {} s", secs(grd1), secs(rr1), secs(min1)),
            grd1 <= rr1 * 1.02 && rr1 <= min1 * 1.02,
        )
        .check(
            "second phone helps sublinearly",
            "benefit does not linearly scale with phones",
            format!("GRD 1ph {} s → 2ph {} s", secs(grd1), secs(grd2)),
            grd2 < grd1 && grd2 > grd1 * 0.5,
        )
        .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig6_ordering_holds() {
        let r = Fig06.run_serial(Scale::new(0.3).unwrap());
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 4);
    }
}
