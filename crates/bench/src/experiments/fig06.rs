//! Fig 6: scheduler comparison downloading the 200 s HLS video over a
//! 2 Mbit/s ADSL line with one and two phones, at 1 am (the paper's
//! low-interference window): ADSL alone vs 3GOL with MIN, RR and GRD.

use threegol_core::vod::VodExperiment;
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;
use threegol_sched::Policy;

use crate::util::{reps, secs, table, Check, Report};

/// Regenerate Fig 6 (mean ± σ download times).
pub fn run(scale: f64) -> Report {
    let n_reps = reps(30, scale);
    let ladder = VideoQuality::paper_ladder();
    let mut rows = Vec::new();
    // grd/min means for the ordering checks, per phone count.
    let mut means: std::collections::HashMap<(usize, &'static str, usize), f64> =
        std::collections::HashMap::new();
    let mut adsl_q1 = 0.0;
    let mut adsl_q4 = 0.0;
    for (qi, quality) in ladder.iter().enumerate() {
        let base =
            VodExperiment::paper_default(LocationProfile::reference_2mbps(), quality.clone(), 0);
        let mut base = base;
        base.hour = 1.0; // the paper starts the comparison at 1:00 am
        let adsl = base.run_mean(n_reps);
        if qi == 0 {
            adsl_q1 = adsl.download.mean;
        }
        if qi == 3 {
            adsl_q4 = adsl.download.mean;
        }
        let mut row = vec![
            quality.label.clone(),
            format!("{}±{}", secs(adsl.download.mean), secs(adsl.download.sd)),
        ];
        for &n_phones in &[1usize, 2] {
            for (policy, label) in [
                (Policy::min_time_paper(), "MIN"),
                (Policy::RoundRobin, "RR"),
                (Policy::Greedy, "GRD"),
            ] {
                let mut e = base.clone();
                e.n_phones = n_phones;
                e.policy = policy;
                let s = e.run_mean(n_reps);
                means.insert((qi, label, n_phones), s.download.mean);
                row.push(format!("{}±{}", secs(s.download.mean), secs(s.download.sd)));
            }
        }
        rows.push(row);
    }
    // Ordering check averaged over qualities.
    let avg = |label: &'static str, phones: usize| -> f64 {
        (0..4).map(|q| means[&(q, label, phones)]).sum::<f64>() / 4.0
    };
    let (grd1, rr1, min1) = (avg("GRD", 1), avg("RR", 1), avg("MIN", 1));
    let grd2 = avg("GRD", 2);
    let checks = vec![
        Check::new(
            "ADSL-only Q1 download",
            "41 s",
            format!("{} s", secs(adsl_q1)),
            adsl_q1 > 30.0 && adsl_q1 < 55.0,
        ),
        Check::new(
            "ADSL-only Q4 download",
            "127 s",
            format!("{} s", secs(adsl_q4)),
            adsl_q4 > 100.0 && adsl_q4 < 150.0,
        ),
        Check::new(
            "scheduler ordering (1 phone)",
            "GRD best, then RR, MIN worst",
            format!("GRD {} ≤ RR {} ≤ MIN {} s", secs(grd1), secs(rr1), secs(min1)),
            grd1 <= rr1 * 1.02 && rr1 <= min1 * 1.02,
        ),
        Check::new(
            "second phone helps sublinearly",
            "benefit does not linearly scale with phones",
            format!("GRD 1ph {} s → 2ph {} s", secs(grd1), secs(grd2)),
            grd2 < grd1 && grd2 > grd1 * 0.5,
        ),
    ];
    Report {
        id: "fig06",
        title: "Fig 6: scheduler comparison, HLS 200 s video on 2 Mbit/s ADSL (download s)",
        body: table(
            &["quality", "ADSL", "MIN 1ph", "RR 1ph", "GRD 1ph", "MIN 2ph", "RR 2ph", "GRD 2ph"],
            &rows,
        ),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig6_ordering_holds() {
        let r = super::run(0.3);
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 4);
    }
}
