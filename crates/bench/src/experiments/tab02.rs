//! Table 2: DSL vs 3GOL (DSL + 3 devices of 3G) throughput at the six
//! measurement locations.

use threegol_measure::table2_row;
use threegol_radio::LocationProfile;

use crate::experiment::{Experiment, Scale};
use crate::util::{close, mbps, reps, Report};

/// The Table 2 reproduction experiment.
#[derive(Debug, Clone, Copy)]
pub struct Tab02;

/// One measurement location.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Index into the six Table 2 locations.
    pub li: usize,
    /// Repetitions per measurement.
    pub n_reps: u64,
}

/// One location's measured row.
#[derive(Debug, Clone)]
pub struct Partial {
    /// The location's display name.
    pub name: String,
    /// Measured DSL (down, up) bits/s.
    pub dsl_bps: (f64, f64),
    /// Measured aggregate 3G (down, up) bits/s.
    pub g3_bps: (f64, f64),
    /// 3GOL over DSL speedup (down, up).
    pub speedup: (f64, f64),
    /// The paper's 3G (down, up) anchors for this location.
    pub paper_g3_bps: (f64, f64),
}

impl Experiment for Tab02 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "tab02"
    }

    fn paper_artifact(&self) -> &'static str {
        "Table 2"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = reps(8, scale.get());
        (0..LocationProfile::paper_table2().len()).map(|li| Unit { li, n_reps }).collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let loc = LocationProfile::paper_table2().into_iter().nth(unit.li).expect("location");
        let row = table2_row(&loc, 0x7AB2 + unit.li as u64, unit.n_reps);
        Partial {
            name: loc.name.clone(),
            dsl_bps: row.dsl_bps,
            g3_bps: row.g3_bps,
            speedup: row.speedup,
            paper_g3_bps: row.paper_g3_bps.expect("table2 targets"),
        }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        let mut report =
            Report::new(self.id(), "Table 2: DSL vs 3GOL (3 devices) at the measurement locations")
                .headers(&[
                    "location",
                    "DSL Mbit/s (d/u)",
                    "3G Mbit/s (d/u)",
                    "3GOL/DSL (d/u)",
                    "paper 3G (d/u)",
                ]);
        for (li, p) in partials.iter().enumerate() {
            let (paper_dl, paper_ul) = p.paper_g3_bps;
            report = report.row(vec![
                p.name.clone(),
                format!("{}/{}", mbps(p.dsl_bps.0), mbps(p.dsl_bps.1)),
                format!("{}/{}", mbps(p.g3_bps.0), mbps(p.g3_bps.1)),
                format!("{:.2}/{:.2}", p.speedup.0, p.speedup.1),
                format!("{}/{}", mbps(paper_dl), mbps(paper_ul)),
            ]);
            if li == 0 {
                // Headline: "increase downlink throughput of ADSL
                // connections by ×2.6 and uplink capacity by ×12.9,
                // while using 3 devices".
                report = report
                    .check(
                        "loc1 downlink speedup",
                        "×2.67",
                        format!("×{:.2}", p.speedup.0),
                        close(p.speedup.0, 2.67, 0.30),
                    )
                    .check(
                        "loc1 uplink speedup",
                        "×12.93",
                        format!("×{:.2}", p.speedup.1),
                        close(p.speedup.1, 12.93, 0.30),
                    );
            }
            report = report.check(
                format!("{} 3G dl", p.name),
                format!("{} Mbit/s", mbps(paper_dl)),
                format!("{} Mbit/s", mbps(p.g3_bps.0)),
                close(p.g3_bps.0, paper_dl, 0.35),
            );
        }
        // VDSL observation: loc6's fast line leaves ~no downlink
        // headroom. table2_row is deterministic per (seed, reps), so
        // the li=5 partial already holds the value.
        let row6 = &partials[5];
        report
            .check(
                "loc6 (55 Mbit/s VDSL) headroom",
                "×1.04 downlink (3G adds little to a fat pipe)",
                format!("×{:.2}", row6.speedup.0),
                row6.speedup.0 < 1.15,
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn table2_reproduced() {
        let r = Tab02.run_serial(Scale::new(0.5).unwrap());
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 6);
    }
}
