//! Table 2: DSL vs 3GOL (DSL + 3 devices of 3G) throughput at the six
//! measurement locations.

use threegol_measure::table2_row;
use threegol_radio::LocationProfile;

use crate::util::{close, mbps, reps, table, Check, Report};

/// Regenerate Table 2.
pub fn run(scale: f64) -> Report {
    let n_reps = reps(8, scale);
    let locations = LocationProfile::paper_table2();
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for (li, loc) in locations.iter().enumerate() {
        let row = table2_row(loc, 0x7AB2 + li as u64, n_reps);
        let (paper_dl, paper_ul) = row.paper_g3_bps.expect("table2 targets");
        rows.push(vec![
            loc.name.clone(),
            format!("{}/{}", mbps(row.dsl_bps.0), mbps(row.dsl_bps.1)),
            format!("{}/{}", mbps(row.g3_bps.0), mbps(row.g3_bps.1)),
            format!("{:.2}/{:.2}", row.speedup.0, row.speedup.1),
            format!("{}/{}", mbps(paper_dl), mbps(paper_ul)),
        ]);
        if li == 0 {
            // Headline: "increase downlink throughput of ADSL
            // connections by ×2.6 and uplink capacity by ×12.9, while
            // using 3 devices".
            checks.push(Check::new(
                "loc1 downlink speedup",
                "×2.67",
                format!("×{:.2}", row.speedup.0),
                close(row.speedup.0, 2.67, 0.30),
            ));
            checks.push(Check::new(
                "loc1 uplink speedup",
                "×12.93",
                format!("×{:.2}", row.speedup.1),
                close(row.speedup.1, 12.93, 0.30),
            ));
        }
        checks.push(Check::new(
            format!("{} 3G dl", loc.name),
            format!("{} Mbit/s", mbps(paper_dl)),
            format!("{} Mbit/s", mbps(row.g3_bps.0)),
            close(row.g3_bps.0, paper_dl, 0.35),
        ));
    }
    // VDSL observation: loc6's fast line leaves ~no downlink headroom.
    let row6 = table2_row(&locations[5], 0x7AB2 + 5, n_reps);
    checks.push(Check::new(
        "loc6 (55 Mbit/s VDSL) headroom",
        "×1.04 downlink (3G adds little to a fat pipe)",
        format!("×{:.2}", row6.speedup.0),
        row6.speedup.0 < 1.15,
    ));
    Report {
        id: "tab02",
        title: "Table 2: DSL vs 3GOL (3 devices) at the measurement locations",
        body: table(
            &[
                "location",
                "DSL Mbit/s (d/u)",
                "3G Mbit/s (d/u)",
                "3GOL/DSL (d/u)",
                "paper 3G (d/u)",
            ],
            &rows,
        ),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_reproduced() {
        let r = super::run(0.5);
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 6);
    }
}
