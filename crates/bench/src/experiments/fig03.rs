//! Fig 3: aggregate 3G throughput (downlink and uplink) as a function
//! of the number of simultaneously active devices (1–10), at the first
//! four Table 2 locations and their measurement hours.

use threegol_measure::{Campaign, Direction};
use threegol_radio::consts::HSUPA_MAX_BPS;
use threegol_radio::LocationProfile;

use crate::util::{mbps, reps, table, Check, Report};

/// Regenerate the Fig 3 series.
pub fn run(scale: f64) -> Report {
    let n_reps = reps(4, scale);
    let locations: Vec<LocationProfile> =
        LocationProfile::paper_table2().into_iter().take(4).collect();
    let mut rows = Vec::new();
    let mut loc1_dl_10 = 0.0;
    let mut loc1_ul_5 = 0.0;
    let mut loc1_ul_10 = 0.0;
    let mut loc1_dl_2 = 0.0;
    for (li, loc) in locations.iter().enumerate() {
        let hour = loc.measured_hour.unwrap_or(12.0);
        let campaign = Campaign::new(loc.clone(), 0xF163 + li as u64);
        for n in 1..=10usize {
            let dl = campaign.aggregate_throughput(n, hour, Direction::Down, n_reps).mean;
            let ul = campaign.aggregate_throughput(n, hour, Direction::Up, n_reps).mean;
            if li == 0 {
                if n == 2 {
                    loc1_dl_2 = dl;
                }
                if n == 10 {
                    loc1_dl_10 = dl;
                    loc1_ul_10 = ul;
                }
                if n == 5 {
                    loc1_ul_5 = ul;
                }
            }
            rows.push(vec![format!("loc{}", li + 1), n.to_string(), mbps(dl), mbps(ul)]);
        }
    }
    let checks = vec![
        Check::new(
            "downlink augmentation reach",
            "up to ~14 Mbit/s downlink at 10 devices",
            format!("loc1: {} Mbit/s", mbps(loc1_dl_10)),
            loc1_dl_10 > 8e6 && loc1_dl_10 < 16e6,
        ),
        Check::new(
            "2-device downlink augmentation",
            "~4.8 Mbit/s median with 2 devices",
            format!("loc1: {} Mbit/s", mbps(loc1_dl_2)),
            loc1_dl_2 > 2.5e6 && loc1_dl_2 < 7e6,
        ),
        Check::new(
            "uplink plateau",
            "uplink plateaus ≈5 Mbit/s by 5 devices (HSUPA max 5.76)",
            format!("loc1: {} @5 dev, {} @10 dev Mbit/s", mbps(loc1_ul_5), mbps(loc1_ul_10)),
            loc1_ul_10 <= HSUPA_MAX_BPS * 1.05 && loc1_ul_10 < loc1_ul_5 * 1.4,
        ),
    ];
    Report {
        id: "fig03",
        title: "Fig 3: aggregate 3G throughput vs number of devices (4 locations)",
        body: table(&["location", "devices", "downlink Mbit/s", "uplink Mbit/s"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig3_shape_holds() {
        let r = super::run(0.5);
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 40);
    }
}
