//! Fig 3: aggregate 3G throughput (downlink and uplink) as a function
//! of the number of simultaneously active devices (1–10), at the first
//! four Table 2 locations and their measurement hours.

use threegol_measure::{Campaign, Direction};
use threegol_radio::consts::HSUPA_MAX_BPS;
use threegol_radio::LocationProfile;

use crate::experiment::{Experiment, Scale};
use crate::util::{mbps, reps, Report};

/// The Fig 3 aggregate-throughput experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig03;

/// One (location, device-count) cell of the sweep: all repetitions of
/// both directions at that point.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Index into the first four Table 2 locations.
    pub li: usize,
    /// Number of simultaneously active devices (1–10).
    pub n: usize,
    /// Repetitions per measurement.
    pub n_reps: u64,
}

/// Mean aggregate throughput for one cell.
#[derive(Debug, Clone, Copy)]
pub struct Partial {
    /// The unit's location index.
    pub li: usize,
    /// The unit's device count.
    pub n: usize,
    /// Mean downlink bits/s.
    pub dl: f64,
    /// Mean uplink bits/s.
    pub ul: f64,
}

impl Experiment for Fig03 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "fig03"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 3"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = reps(4, scale.get());
        (0..4).flat_map(|li| (1..=10).map(move |n| Unit { li, n, n_reps })).collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let loc = LocationProfile::paper_table2().into_iter().nth(unit.li).expect("location");
        let hour = loc.measured_hour.unwrap_or(12.0);
        let campaign = Campaign::new(loc, 0xF163 + unit.li as u64);
        Partial {
            li: unit.li,
            n: unit.n,
            dl: campaign.aggregate_throughput(unit.n, hour, Direction::Down, unit.n_reps).mean,
            ul: campaign.aggregate_throughput(unit.n, hour, Direction::Up, unit.n_reps).mean,
        }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        let mut report = Report::new(
            self.id(),
            "Fig 3: aggregate 3G throughput vs number of devices (4 locations)",
        )
        .headers(&["location", "devices", "downlink Mbit/s", "uplink Mbit/s"]);
        let mut loc1_dl_10 = 0.0;
        let mut loc1_ul_5 = 0.0;
        let mut loc1_ul_10 = 0.0;
        let mut loc1_dl_2 = 0.0;
        for p in &partials {
            if p.li == 0 {
                if p.n == 2 {
                    loc1_dl_2 = p.dl;
                }
                if p.n == 10 {
                    loc1_dl_10 = p.dl;
                    loc1_ul_10 = p.ul;
                }
                if p.n == 5 {
                    loc1_ul_5 = p.ul;
                }
            }
            report = report.row(vec![
                format!("loc{}", p.li + 1),
                p.n.to_string(),
                mbps(p.dl),
                mbps(p.ul),
            ]);
        }
        report
            .check(
                "downlink augmentation reach",
                "up to ~14 Mbit/s downlink at 10 devices",
                format!("loc1: {} Mbit/s", mbps(loc1_dl_10)),
                loc1_dl_10 > 8e6 && loc1_dl_10 < 16e6,
            )
            .check(
                "2-device downlink augmentation",
                "~4.8 Mbit/s median with 2 devices",
                format!("loc1: {} Mbit/s", mbps(loc1_dl_2)),
                loc1_dl_2 > 2.5e6 && loc1_dl_2 < 7e6,
            )
            .check(
                "uplink plateau",
                "uplink plateaus ≈5 Mbit/s by 5 devices (HSUPA max 5.76)",
                format!("loc1: {} @5 dev, {} @10 dev Mbit/s", mbps(loc1_ul_5), mbps(loc1_ul_10)),
                loc1_ul_10 <= HSUPA_MAX_BPS * 1.05 && loc1_ul_10 < loc1_ul_5 * 1.4,
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig3_shape_holds() {
        let r = Fig03.run_serial(Scale::new(0.5).unwrap());
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 40);
    }
}
