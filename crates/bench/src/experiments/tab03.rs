//! Table 3: average, maximum and standard deviation of the per-device
//! throughput of an HSPA base station for device groupings of 1/3/5.

use threegol_measure::{Campaign, Direction};
use threegol_radio::LocationProfile;
use threegol_simnet::stats::Summary;

use crate::experiment::{Experiment, Scale};
use crate::util::{close, mbps, Report};

/// The paper's Table 3 means, bits/s: `(cluster, ul_mean, dl_mean)`.
const PAPER_MEANS: &[(usize, f64, f64)] =
    &[(1, 1.09e6, 1.61e6), (3, 0.90e6, 1.33e6), (5, 0.65e6, 1.16e6)];

/// The Table 3 reproduction experiment.
#[derive(Debug, Clone, Copy)]
pub struct Tab03;

/// One cluster size of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Device cluster size (1, 3 or 5).
    pub cluster: usize,
    /// The paper's uplink mean anchor for this cluster, bits/s.
    pub paper_ul: f64,
    /// The paper's downlink mean anchor for this cluster, bits/s.
    pub paper_dl: f64,
    /// Number of measurement days.
    pub days: u64,
}

/// One cluster's measured summaries.
#[derive(Debug, Clone, Copy)]
pub struct Partial {
    /// The unit this partial answers.
    pub unit: Unit,
    /// Uplink per-device throughput summary.
    pub ul: Summary,
    /// Downlink per-device throughput summary.
    pub dl: Summary,
}

impl Experiment for Tab03 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "tab03"
    }

    fn paper_artifact(&self) -> &'static str {
        "Table 3"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let days = if scale.get() >= 0.8 { 5 } else { 2 };
        PAPER_MEANS
            .iter()
            .map(|&(cluster, paper_ul, paper_dl)| Unit { cluster, paper_ul, paper_dl, days })
            .collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let hours: Vec<f64> = (0..24).step_by(3).map(|h| h as f64).collect();
        // A neutral, well-provisioned location with unit calibration:
        // the Table 3 anchors are the raw curve, so we measure them on
        // a factor-1 deployment.
        let mut loc = LocationProfile::reference_2mbps();
        loc.cell_factor_dl = 1.0;
        loc.cell_factor_ul = 1.0;
        loc.signal_dbm = -70.0; // full signal: measure the curve itself
        let campaign = Campaign::new(loc, 0x7AB3);
        Partial {
            unit: *unit,
            ul: Summary::of(&campaign.per_device_throughput(
                unit.cluster,
                &hours,
                unit.days,
                Direction::Up,
            )),
            dl: Summary::of(&campaign.per_device_throughput(
                unit.cluster,
                &hours,
                unit.days,
                Direction::Down,
            )),
        }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        let mut report =
            Report::new(self.id(), "Table 3: per-device throughput by cluster size (mean/max/sd)")
                .headers(&[
                    "cluster",
                    "uplink Mbit/s (mean/max/sd)",
                    "downlink Mbit/s (mean/max/sd)",
                ]);
        for p in &partials {
            report = report
                .row(vec![
                    p.unit.cluster.to_string(),
                    format!("{}/{}/{}", mbps(p.ul.mean), mbps(p.ul.max), mbps(p.ul.sd)),
                    format!("{}/{}/{}", mbps(p.dl.mean), mbps(p.dl.max), mbps(p.dl.sd)),
                ])
                .check(
                    format!("cluster {} ul mean", p.unit.cluster),
                    format!("{} Mbit/s", mbps(p.unit.paper_ul)),
                    format!("{} Mbit/s", mbps(p.ul.mean)),
                    close(p.ul.mean, p.unit.paper_ul, 0.30),
                )
                .check(
                    format!("cluster {} dl mean", p.unit.cluster),
                    format!("{} Mbit/s", mbps(p.unit.paper_dl)),
                    format!("{} Mbit/s", mbps(p.dl.mean)),
                    close(p.dl.mean, p.unit.paper_dl, 0.30),
                );
        }
        report.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn table3_reproduced() {
        let r = Tab03.run_serial(Scale::new(0.3).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
