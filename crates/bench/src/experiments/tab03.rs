//! Table 3: average, maximum and standard deviation of the per-device
//! throughput of an HSPA base station for device groupings of 1/3/5.

use threegol_measure::{Campaign, Direction};
use threegol_radio::LocationProfile;
use threegol_simnet::stats::Summary;

use crate::util::{close, mbps, table, Check, Report};

/// The paper's Table 3 means, bits/s: `(cluster, ul_mean, dl_mean)`.
const PAPER_MEANS: &[(usize, f64, f64)] =
    &[(1, 1.09e6, 1.61e6), (3, 0.90e6, 1.33e6), (5, 0.65e6, 1.16e6)];

/// Regenerate Table 3.
pub fn run(scale: f64) -> Report {
    let days = if scale >= 0.8 { 5 } else { 2 };
    let hours: Vec<f64> = (0..24).step_by(3).map(|h| h as f64).collect();
    // A neutral, well-provisioned location with unit calibration: the
    // Table 3 anchors are the raw curve, so we measure them on a
    // factor-1 deployment.
    let mut loc = LocationProfile::reference_2mbps();
    loc.cell_factor_dl = 1.0;
    loc.cell_factor_ul = 1.0;
    loc.signal_dbm = -70.0; // full signal: measure the curve itself
    let campaign = Campaign::new(loc, 0x7AB3);
    let mut rows = Vec::new();
    let mut checks = Vec::new();
    for &(cluster, paper_ul, paper_dl) in PAPER_MEANS {
        let ul = Summary::of(&campaign.per_device_throughput(cluster, &hours, days, Direction::Up));
        let dl =
            Summary::of(&campaign.per_device_throughput(cluster, &hours, days, Direction::Down));
        rows.push(vec![
            cluster.to_string(),
            format!("{}/{}/{}", mbps(ul.mean), mbps(ul.max), mbps(ul.sd)),
            format!("{}/{}/{}", mbps(dl.mean), mbps(dl.max), mbps(dl.sd)),
        ]);
        checks.push(Check::new(
            format!("cluster {cluster} ul mean"),
            format!("{} Mbit/s", mbps(paper_ul)),
            format!("{} Mbit/s", mbps(ul.mean)),
            close(ul.mean, paper_ul, 0.30),
        ));
        checks.push(Check::new(
            format!("cluster {cluster} dl mean"),
            format!("{} Mbit/s", mbps(paper_dl)),
            format!("{} Mbit/s", mbps(dl.mean)),
            close(dl.mean, paper_dl, 0.30),
        ));
    }
    Report {
        id: "tab03",
        title: "Table 3: per-device throughput by cluster size (mean/max/sd)",
        body: table(
            &["cluster", "uplink Mbit/s (mean/max/sd)", "downlink Mbit/s (mean/max/sd)"],
            &rows,
        ),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table3_reproduced() {
        let r = super::run(0.3);
        assert!(r.all_ok(), "{}", r.render());
    }
}
