//! Ablation: application-layer 3GOL vs coupled-congestion-control
//! MPTCP (§5.2's negative result: "We experimented with MP-TCP and it
//! provided no benefit").

use threegol_core::mptcp::mptcp_vod_download_secs;
use threegol_core::vod::VodExperiment;
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;

use crate::util::{reps, secs, table, Check, Report};

/// Run the MPTCP comparison.
pub fn run(scale: f64) -> Report {
    let n_reps = reps(10, scale);
    let mut rows = Vec::new();
    let mut ratio_sum = 0.0;
    let mut mptcp_vs_adsl_sum = 0.0;
    let mut count = 0.0;
    for quality in VideoQuality::paper_ladder() {
        let e =
            VodExperiment::paper_default(LocationProfile::reference_2mbps(), quality.clone(), 2);
        let adsl = e.adsl_only().run_mean(n_reps).download.mean;
        let gol = e.run_mean(n_reps).download.mean;
        let mptcp: f64 =
            (0..n_reps).map(|r| mptcp_vod_download_secs(&e, r)).sum::<f64>() / n_reps as f64;
        ratio_sum += mptcp / gol;
        mptcp_vs_adsl_sum += mptcp / adsl;
        count += 1.0;
        rows.push(vec![
            quality.label.clone(),
            secs(adsl),
            secs(mptcp),
            secs(gol),
            format!("×{:.2}", mptcp / gol),
        ]);
    }
    let mean_ratio = ratio_sum / count;
    let mptcp_vs_adsl = mptcp_vs_adsl_sum / count;
    let checks = vec![
        Check::new(
            "coupled MPTCP provides no aggregation benefit",
            "MP-TCP provided no benefit (coupled CC not wireless-ready)",
            format!("MPTCP/ADSL time ratio {mptcp_vs_adsl:.2} (≈1 = no benefit)"),
            mptcp_vs_adsl > 0.6 && mptcp_vs_adsl < 1.2,
        ),
        Check::new(
            "3GOL clearly beats coupled MPTCP",
            "application-layer onloading aggregates where MPTCP cannot",
            format!("MPTCP is ×{mean_ratio:.2} slower than 3GOL"),
            mean_ratio > 1.3,
        ),
    ];
    Report {
        id: "abl05",
        title: "Ablation: 3GOL vs coupled-CC MPTCP (download s, 2 phones)",
        body: table(&["quality", "ADSL", "MPTCP (coupled)", "3GOL GRD", "MPTCP/3GOL"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn mptcp_ablation_holds() {
        let r = super::run(0.3);
        assert!(r.all_ok(), "{}", r.render());
    }
}
