//! Ablation: application-layer 3GOL vs coupled-congestion-control
//! MPTCP (§5.2's negative result: "We experimented with MP-TCP and it
//! provided no benefit").

use threegol_core::mptcp::mptcp_vod_download_secs;
use threegol_core::vod::VodExperiment;
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;

use crate::experiment::{Experiment, Scale};
use crate::util::{reps, secs, Report};

/// The MPTCP-comparison ablation.
#[derive(Debug, Clone, Copy)]
pub struct Abl05;

/// One quality rung: all three transports over all repetitions.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Quality index into the paper ladder.
    pub qi: usize,
    /// Repetitions per transport.
    pub n_reps: u64,
}

/// One rung's mean download times per transport.
#[derive(Debug, Clone)]
pub struct Partial {
    /// The rung's quality label.
    pub label: String,
    /// ADSL-only mean download, seconds.
    pub adsl: f64,
    /// 3GOL (greedy, 2 phones) mean download, seconds.
    pub gol: f64,
    /// Coupled-CC MPTCP mean download, seconds.
    pub mptcp: f64,
}

impl Experiment for Abl05 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "abl05"
    }

    fn paper_artifact(&self) -> &'static str {
        "Ablation: MPTCP comparison (§5.2)"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = reps(10, scale.get());
        (0..VideoQuality::paper_ladder().len()).map(|qi| Unit { qi, n_reps }).collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let quality = VideoQuality::paper_ladder().into_iter().nth(unit.qi).expect("quality");
        let e =
            VodExperiment::paper_default(LocationProfile::reference_2mbps(), quality.clone(), 2);
        let n_reps = unit.n_reps;
        Partial {
            label: quality.label.clone(),
            adsl: e.adsl_only().run_mean(n_reps).download.mean,
            gol: e.run_mean(n_reps).download.mean,
            mptcp: (0..n_reps).map(|r| mptcp_vod_download_secs(&e, r)).sum::<f64>() / n_reps as f64,
        }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        let mut rows = Vec::new();
        let mut ratio_sum = 0.0;
        let mut mptcp_vs_adsl_sum = 0.0;
        let mut count = 0.0;
        for p in &partials {
            ratio_sum += p.mptcp / p.gol;
            mptcp_vs_adsl_sum += p.mptcp / p.adsl;
            count += 1.0;
            rows.push(vec![
                p.label.clone(),
                secs(p.adsl),
                secs(p.mptcp),
                secs(p.gol),
                format!("×{:.2}", p.mptcp / p.gol),
            ]);
        }
        let mean_ratio = ratio_sum / count;
        let mptcp_vs_adsl = mptcp_vs_adsl_sum / count;
        Report::new(self.id(), "Ablation: 3GOL vs coupled-CC MPTCP (download s, 2 phones)")
            .headers(&["quality", "ADSL", "MPTCP (coupled)", "3GOL GRD", "MPTCP/3GOL"])
            .rows(rows)
            .check(
                "coupled MPTCP provides no aggregation benefit",
                "MP-TCP provided no benefit (coupled CC not wireless-ready)",
                format!("MPTCP/ADSL time ratio {mptcp_vs_adsl:.2} (≈1 = no benefit)"),
                mptcp_vs_adsl > 0.6 && mptcp_vs_adsl < 1.2,
            )
            .check(
                "3GOL clearly beats coupled MPTCP",
                "application-layer onloading aggregates where MPTCP cannot",
                format!("MPTCP is ×{mean_ratio:.2} slower than 3GOL"),
                mean_ratio > 1.3,
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn mptcp_ablation_holds() {
        let r = Abl05.run_serial(Scale::new(0.3).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
