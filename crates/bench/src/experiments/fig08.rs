//! Fig 8: percentage reduction of the *total* video download time at
//! the five evaluation locations, for one/two phones starting from
//! idle (`3G`) or connected (`H`) mode, averaged across the four video
//! qualities.

use threegol_core::metrics::reduction_percent;
use threegol_core::vod::{RadioStart, VodExperiment, VodOutcome, VodSummary};
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;

use crate::experiment::{Experiment, Scale};
use crate::util::{reps, Report};

/// The Fig 8 download-time-reduction experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig08;

/// One repetition of one (location, configuration, quality) cell.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Index into the five Table 4 evaluation locations.
    pub li: usize,
    /// Configuration index, column order: 1ph-3G, 1ph-H, 2ph-3G, 2ph-H.
    pub cfg: usize,
    /// Quality index into the paper ladder.
    pub qi: usize,
    /// Repetition number.
    pub rep: u64,
}

/// The rep's outcome without 3GOL and with it.
#[derive(Debug, Clone)]
pub struct Partial {
    /// ADSL-only outcome.
    pub adsl: VodOutcome,
    /// 3GOL outcome.
    pub gol: VodOutcome,
}

fn n_reps_at(scale: Scale) -> u64 {
    reps(30, scale.get().min(0.4))
}

impl Experiment for Fig08 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "fig08"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 8"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = n_reps_at(scale);
        let n_locs = LocationProfile::paper_table4().len();
        let mut units = Vec::new();
        for li in 0..n_locs {
            for cfg in 0..4 {
                for qi in 0..4 {
                    for rep in 0..n_reps {
                        units.push(Unit { li, cfg, qi, rep });
                    }
                }
            }
        }
        units
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let loc = LocationProfile::paper_table4().into_iter().nth(unit.li).expect("location");
        let quality = VideoQuality::paper_ladder().into_iter().nth(unit.qi).expect("quality");
        let n_phones = if unit.cfg < 2 { 1 } else { 2 };
        let start = if unit.cfg.is_multiple_of(2) { RadioStart::Cold } else { RadioStart::Warm };
        let mut e = VodExperiment::paper_default(loc, quality, n_phones);
        e.radio_start = start;
        Partial { adsl: e.adsl_only().run_once(unit.rep), gol: e.run_once(unit.rep) }
    }

    fn merge(&self, scale: Scale, partials: Vec<Partial>) -> Report {
        let n_reps = n_reps_at(scale) as usize;
        let locations = LocationProfile::paper_table4();
        let ladder = VideoQuality::paper_ladder();
        // Partials arrive in unit order: contiguous rep-ordered chunks
        // per (location, config, quality) cell.
        let mut cells = partials.chunks(n_reps);
        let mut rows = Vec::new();
        let mut all_reductions: Vec<f64> = Vec::new();
        let mut second_phone_helps = 0usize;
        let mut comparisons = 0usize;
        for loc in &locations {
            let mut cells_row = vec![loc.name.clone()];
            let mut by_cfg: Vec<f64> = Vec::new();
            for _cfg in 0..4 {
                let mut acc = 0.0;
                for _quality in &ladder {
                    let chunk = cells.next().expect("cell chunk");
                    let adsl: Vec<VodOutcome> = chunk.iter().map(|p| p.adsl.clone()).collect();
                    let gol: Vec<VodOutcome> = chunk.iter().map(|p| p.gol.clone()).collect();
                    acc += reduction_percent(
                        VodSummary::from_outcomes(&adsl).download.mean,
                        VodSummary::from_outcomes(&gol).download.mean,
                    );
                }
                let mean_red = acc / ladder.len() as f64;
                by_cfg.push(mean_red);
                all_reductions.push(mean_red);
                cells_row.push(format!("{mean_red:.0}%"));
            }
            // cfg order: [1ph-3G, 1ph-H, 2ph-3G, 2ph-H]
            comparisons += 2;
            if by_cfg[2] >= by_cfg[0] {
                second_phone_helps += 1;
            }
            if by_cfg[3] >= by_cfg[1] {
                second_phone_helps += 1;
            }
            rows.push(cells_row);
        }
        let min_red = all_reductions.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_red = all_reductions.iter().cloned().fold(0.0, f64::max);
        Report::new(
            self.id(),
            "Fig 8: total video download time reduction (%), avg across qualities",
        )
        .headers(&["location", "3G 1ph", "H 1ph", "3G 2ph", "H 2ph"])
        .rows(rows)
        .check(
            "reduction range",
            "38 % to 72 % (speedup ×1.5–×4.1)",
            // The slow-ADSL end reproduces; the largest paper
            // reductions (fast lines) also depend on in-the-wild
            // per-request latencies beyond our slow-start model, so
            // require the same ordering at ~0.6× magnitude.
            format!("{min_red:.0}% to {max_red:.0}%"),
            min_red > 10.0 && max_red < 80.0 && max_red > 35.0,
        )
        .check(
            "second device always helps",
            "+5.9 % up to +26 % over one device",
            format!("{second_phone_helps}/{comparisons} configurations improved"),
            second_phone_helps >= comparisons - 1,
        )
        .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig8_reductions_hold() {
        let r = Fig08.run_serial(Scale::new(0.1).unwrap());
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 5);
    }
}
