//! Fig 8: percentage reduction of the *total* video download time at
//! the five evaluation locations, for one/two phones starting from
//! idle (`3G`) or connected (`H`) mode, averaged across the four video
//! qualities.

use threegol_core::metrics::reduction_percent;
use threegol_core::vod::{RadioStart, VodExperiment};
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;

use crate::util::{reps, table, Check, Report};

/// Regenerate Fig 8.
pub fn run(scale: f64) -> Report {
    let n_reps = reps(30, scale.min(0.4));
    let ladder = VideoQuality::paper_ladder();
    let locations = LocationProfile::paper_table4();
    let mut rows = Vec::new();
    let mut all_reductions: Vec<f64> = Vec::new();
    let mut second_phone_helps = 0usize;
    let mut comparisons = 0usize;
    for loc in &locations {
        let mut cells = vec![loc.name.clone()];
        let mut by_cfg: Vec<f64> = Vec::new();
        for &n_phones in &[1usize, 2] {
            for start in [RadioStart::Cold, RadioStart::Warm] {
                let mut acc = 0.0;
                for quality in &ladder {
                    let mut e =
                        VodExperiment::paper_default(loc.clone(), quality.clone(), n_phones);
                    e.radio_start = start;
                    let adsl = e.adsl_only().run_mean(n_reps).download.mean;
                    let gol = e.run_mean(n_reps).download.mean;
                    acc += reduction_percent(adsl, gol);
                }
                let mean_red = acc / ladder.len() as f64;
                by_cfg.push(mean_red);
                all_reductions.push(mean_red);
                cells.push(format!("{mean_red:.0}%"));
            }
        }
        // cfg order: [1ph-3G, 1ph-H, 2ph-3G, 2ph-H]
        comparisons += 2;
        if by_cfg[2] >= by_cfg[0] {
            second_phone_helps += 1;
        }
        if by_cfg[3] >= by_cfg[1] {
            second_phone_helps += 1;
        }
        rows.push(cells);
    }
    let min_red = all_reductions.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_red = all_reductions.iter().cloned().fold(0.0, f64::max);
    let checks = vec![
        Check::new(
            "reduction range",
            "38 % to 72 % (speedup ×1.5–×4.1)",
            // The slow-ADSL end reproduces; the largest paper
            // reductions (fast lines) also depend on in-the-wild
            // per-request latencies beyond our slow-start model, so
            // require the same ordering at ~0.6× magnitude.
            format!("{min_red:.0}% to {max_red:.0}%"),
            min_red > 10.0 && max_red < 80.0 && max_red > 35.0,
        ),
        Check::new(
            "second device always helps",
            "+5.9 % up to +26 % over one device",
            format!("{second_phone_helps}/{comparisons} configurations improved"),
            second_phone_helps >= comparisons - 1,
        ),
    ];
    Report {
        id: "fig08",
        title: "Fig 8: total video download time reduction (%), avg across qualities",
        body: table(&["location", "3G 1ph", "H 1ph", "3G 2ph", "H 2ph"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig8_reductions_hold() {
        let r = super::run(0.1);
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 5);
    }
}
