//! Fig 11c: relative increase of 3G traffic (total and during the
//! mobile peak hour) as a function of the fraction of subscribers
//! adopting 3GOL at 20 MB/day.

use threegol_traces::analysis::adoption_increase;
use threegol_traces::mno::{MnoConfig, MnoTrace};

use crate::experiment::{Experiment, Scale};
use crate::util::Report;

/// The Fig 11c adoption-scaling experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig11c;

/// One unit: the whole MNO population.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Synthetic MNO population size at this scale.
    pub n_users: usize,
}

impl Experiment for Fig11c {
    type Unit = Unit;
    type Partial = Report;

    fn id(&self) -> &'static str {
        "fig11c"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 11c"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        vec![Unit { n_users: ((20_000.0 * scale.get()) as usize).max(2_000) }]
    }

    fn run_unit(&self, unit: &Unit) -> Report {
        let trace = MnoTrace::generate(MnoConfig { n_users: unit.n_users, ..MnoConfig::default() });
        let mean_daily_used = trace.mean_used_bytes() / 30.0;
        let budget = 20e6;
        let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let points = adoption_increase(mean_daily_used, budget, &fractions);
        let rows = points.iter().map(|p| {
            vec![
                format!("{:.1}", p.adoption),
                format!("{:.0}%", p.total_increase * 100.0),
                format!("{:.0}%", p.peak_increase * 100.0),
            ]
        });
        let full = points.last().expect("points");
        Report::new(self.id(), "Fig 11c: relative 3G traffic increase vs 3GOL adoption")
            .headers(&["adoption", "total increase", "peak-hour increase"])
            .rows(rows.collect::<Vec<_>>())
            .check(
                "full adoption doubles traffic",
                "at 100 % adoption the increase in traffic is around 100 %",
                format!("{:.0}%", full.total_increase * 100.0),
                full.total_increase > 0.5 && full.total_increase < 2.0,
            )
            .check(
                "peak increase below total",
                "peak-hour increase smaller than total, difference rather small",
                format!(
                    "peak {:.0}% vs total {:.0}%",
                    full.peak_increase * 100.0,
                    full.total_increase * 100.0
                ),
                full.peak_increase < full.total_increase
                    && full.peak_increase > 0.6 * full.total_increase,
            )
            .check(
                "linearity in adoption",
                "modest increase at low adoption",
                format!("10 % adoption → {:.0}%", points[1].total_increase * 100.0),
                points[1].total_increase < 0.25,
            )
            .finish()
    }

    fn merge(&self, _scale: Scale, mut partials: Vec<Report>) -> Report {
        partials.pop().expect("one unit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig11c_scaling_matches() {
        let r = Fig11c.run_serial(Scale::new(0.2).unwrap());
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 11);
    }
}
