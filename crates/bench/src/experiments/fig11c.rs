//! Fig 11c: relative increase of 3G traffic (total and during the
//! mobile peak hour) as a function of the fraction of subscribers
//! adopting 3GOL at 20 MB/day.

use threegol_traces::analysis::adoption_increase;
use threegol_traces::mno::{MnoConfig, MnoTrace};

use crate::util::{table, Check, Report};

/// Regenerate Fig 11c.
pub fn run(scale: f64) -> Report {
    let n_users = ((20_000.0 * scale) as usize).max(2_000);
    let trace = MnoTrace::generate(MnoConfig { n_users, ..MnoConfig::default() });
    let mean_daily_used = trace.mean_used_bytes() / 30.0;
    let budget = 20e6;
    let fractions: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let points = adoption_increase(mean_daily_used, budget, &fractions);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.adoption),
                format!("{:.0}%", p.total_increase * 100.0),
                format!("{:.0}%", p.peak_increase * 100.0),
            ]
        })
        .collect();
    let full = points.last().expect("points");
    let checks = vec![
        Check::new(
            "full adoption doubles traffic",
            "at 100 % adoption the increase in traffic is around 100 %",
            format!("{:.0}%", full.total_increase * 100.0),
            full.total_increase > 0.5 && full.total_increase < 2.0,
        ),
        Check::new(
            "peak increase below total",
            "peak-hour increase smaller than total, difference rather small",
            format!(
                "peak {:.0}% vs total {:.0}%",
                full.peak_increase * 100.0,
                full.total_increase * 100.0
            ),
            full.peak_increase < full.total_increase
                && full.peak_increase > 0.6 * full.total_increase,
        ),
        Check::new(
            "linearity in adoption",
            "modest increase at low adoption",
            format!("10 % adoption → {:.0}%", points[1].total_increase * 100.0),
            points[1].total_increase < 0.25,
        ),
    ];
    Report {
        id: "fig11c",
        title: "Fig 11c: relative 3G traffic increase vs 3GOL adoption",
        body: table(&["adoption", "total increase", "peak-hour increase"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig11c_scaling_matches() {
        let r = super::run(0.2);
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 11);
    }
}
