//! Fig 10: CDF of the fraction of the contracted monthly cap that
//! subscribers actually use (the MNO dataset).

use threegol_traces::mno::{MnoConfig, MnoTrace};

use crate::experiment::{Experiment, Scale};
use crate::util::Report;

/// The Fig 10 cap-usage-CDF experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig10;

/// One unit: the whole population (the trace is generated once and
/// every statistic reads from it).
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Synthetic MNO population size at this scale.
    pub n_users: usize,
}

impl Experiment for Fig10 {
    type Unit = Unit;
    type Partial = Report;

    fn id(&self) -> &'static str {
        "fig10"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 10"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        vec![Unit { n_users: ((20_000.0 * scale.get()) as usize).max(2_000) }]
    }

    fn run_unit(&self, unit: &Unit) -> Report {
        let trace = MnoTrace::generate(MnoConfig { n_users: unit.n_users, ..MnoConfig::default() });
        let ecdf = trace.used_fraction_ecdf();
        let rows = (0..=20).map(|i| {
            let x = i as f64 * 0.05;
            vec![format!("{x:.2}"), format!("{:.3}", ecdf.eval(x))]
        });
        let p10 = ecdf.eval(0.10);
        let p50 = ecdf.eval(0.50);
        let mean_free_mb = trace.mean_free_bytes() / 1e6;
        Report::new(self.id(), "Fig 10: CDF of the fraction of used cap (MNO dataset)")
            .headers(&["used fraction", "CDF"])
            .rows(rows)
            .check(
                "light users",
                "40 % of customers use less than 10 % of their cap",
                format!("P(frac ≤ 0.1) = {p10:.2}"),
                (p10 - 0.40).abs() < 0.05,
            )
            .check(
                "moderate users",
                "75 % of customers use less than 50 % of the cap",
                format!("P(frac ≤ 0.5) = {p50:.2}"),
                (p50 - 0.75).abs() < 0.05,
            )
            .check(
                "spare volume",
                "~20 MB/device/day (≈600 MB/month) of free volume on average",
                format!("mean free volume {mean_free_mb:.0} MB/month"),
                mean_free_mb > 300.0 && mean_free_mb < 2500.0,
            )
            .finish()
    }

    fn merge(&self, _scale: Scale, mut partials: Vec<Report>) -> Report {
        partials.pop().expect("one unit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig10_cdf_matches() {
        let r = Fig10.run_serial(Scale::new(0.5).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
