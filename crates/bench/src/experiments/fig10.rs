//! Fig 10: CDF of the fraction of the contracted monthly cap that
//! subscribers actually use (the MNO dataset).

use threegol_traces::mno::{MnoConfig, MnoTrace};

use crate::util::{table, Check, Report};

/// Regenerate Fig 10.
pub fn run(scale: f64) -> Report {
    let n_users = ((20_000.0 * scale) as usize).max(2_000);
    let trace = MnoTrace::generate(MnoConfig { n_users, ..MnoConfig::default() });
    let ecdf = trace.used_fraction_ecdf();
    let rows: Vec<Vec<String>> = (0..=20)
        .map(|i| {
            let x = i as f64 * 0.05;
            vec![format!("{x:.2}"), format!("{:.3}", ecdf.eval(x))]
        })
        .collect();
    let p10 = ecdf.eval(0.10);
    let p50 = ecdf.eval(0.50);
    let mean_free_mb = trace.mean_free_bytes() / 1e6;
    let checks = vec![
        Check::new(
            "light users",
            "40 % of customers use less than 10 % of their cap",
            format!("P(frac ≤ 0.1) = {p10:.2}"),
            (p10 - 0.40).abs() < 0.05,
        ),
        Check::new(
            "moderate users",
            "75 % of customers use less than 50 % of the cap",
            format!("P(frac ≤ 0.5) = {p50:.2}"),
            (p50 - 0.75).abs() < 0.05,
        ),
        Check::new(
            "spare volume",
            "~20 MB/device/day (≈600 MB/month) of free volume on average",
            format!("mean free volume {mean_free_mb:.0} MB/month"),
            mean_free_mb > 300.0 && mean_free_mb < 2500.0,
        ),
    ];
    Report {
        id: "fig10",
        title: "Fig 10: CDF of the fraction of used cap (MNO dataset)",
        body: table(&["used fraction", "CDF"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig10_cdf_matches() {
        let r = super::run(0.5);
        assert!(r.all_ok(), "{}", r.render());
    }
}
