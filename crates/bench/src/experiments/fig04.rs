//! Fig 4: per-device throughput over the hours of the day at the six
//! Table 2 locations, for device groups of 5, 3 and 1 (the paper runs
//! the groups at every hour over five days).

use threegol_measure::{Campaign, Direction};
use threegol_radio::LocationProfile;
use threegol_simnet::stats::Summary;

use crate::util::{mbps, table, Check, Report};

/// Regenerate the Fig 4 series (per-device throughput by hour).
pub fn run(scale: f64) -> Report {
    let days = if scale >= 0.8 { 5 } else { 2 };
    let hours: Vec<f64> = if scale >= 0.8 {
        (0..24).map(|h| h as f64).collect()
    } else {
        (0..24).step_by(4).map(|h| h as f64).collect()
    };
    let locations = LocationProfile::paper_table2();
    let mut rows = Vec::new();
    // Per-device throughput variability across the day, cluster of 5.
    let mut five_dev_dl_all: Vec<f64> = Vec::new();
    let mut one_dev_dl_max: f64 = 0.0;
    for (li, loc) in locations.iter().enumerate() {
        let campaign = Campaign::new(loc.clone(), 0xF164 + li as u64);
        for &hour in &hours {
            let mut cells = vec![format!("loc{}", li + 1), format!("{hour:02.0}:00")];
            for &cluster in &[1usize, 3, 5] {
                let dl = Summary::of(&campaign.per_device_throughput(
                    cluster,
                    &[hour],
                    days,
                    Direction::Down,
                ));
                let ul = Summary::of(&campaign.per_device_throughput(
                    cluster,
                    &[hour],
                    days,
                    Direction::Up,
                ));
                if cluster == 5 {
                    five_dev_dl_all.push(dl.mean);
                }
                if cluster == 1 {
                    one_dev_dl_max = one_dev_dl_max.max(dl.mean);
                }
                cells.push(mbps(dl.mean));
                cells.push(mbps(ul.mean));
            }
            rows.push(cells);
        }
    }
    let five = Summary::of(&five_dev_dl_all);
    let rel_var = if five.mean > 0.0 { five.sd / five.mean } else { 0.0 };
    let checks = vec![
        Check::new(
            "single-device ceiling",
            "single device up to ~2.5 Mbit/s depending on hour",
            format!("max per-device mean {} Mbit/s", mbps(one_dev_dl_max)),
            one_dev_dl_max > 1.2e6 && one_dev_dl_max < 4.5e6,
        ),
        Check::new(
            "diurnal variation is modest",
            "diurnal throughput variations exist but are rather small",
            format!("5-device per-device dl rel. σ across hours/locations = {rel_var:.2}"),
            rel_var < 0.5,
        ),
    ];
    Report {
        id: "fig04",
        title: "Fig 4: per-device throughput by hour (clusters 1/3/5, six locations)",
        body: table(
            &["location", "hour", "1dev dl", "1dev ul", "3dev dl", "3dev ul", "5dev dl", "5dev ul"],
            &rows,
        ),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig4_shape_holds() {
        let r = super::run(0.15);
        assert!(r.all_ok(), "{}", r.render());
    }
}
