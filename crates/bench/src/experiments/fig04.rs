//! Fig 4: per-device throughput over the hours of the day at the six
//! Table 2 locations, for device groups of 5, 3 and 1 (the paper runs
//! the groups at every hour over five days).

use threegol_measure::{Campaign, Direction};
use threegol_radio::LocationProfile;
use threegol_simnet::stats::Summary;

use crate::experiment::{Experiment, Scale};
use crate::util::{mbps, Report};

/// The Fig 4 temporal-throughput experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig04;

/// One (location, hour) cell: all three cluster sizes over all days.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Index into the six Table 2 locations.
    pub li: usize,
    /// Hour of day probed.
    pub hour: f64,
    /// Number of measurement days.
    pub days: u64,
}

/// One table row plus the series samples the checks need.
#[derive(Debug, Clone)]
pub struct Partial {
    /// The preformatted row cells for this (location, hour).
    pub cells: Vec<String>,
    /// Mean per-device downlink of the 5-device cluster, bits/s.
    pub five_dl_mean: f64,
    /// Mean per-device downlink of the single device, bits/s.
    pub one_dl_mean: f64,
}

impl Experiment for Fig04 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "fig04"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 4"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let days = if scale.get() >= 0.8 { 5 } else { 2 };
        let hours: Vec<f64> = if scale.get() >= 0.8 {
            (0..24).map(|h| h as f64).collect()
        } else {
            (0..24).step_by(4).map(|h| h as f64).collect()
        };
        (0..LocationProfile::paper_table2().len())
            .flat_map(|li| hours.iter().map(move |&hour| Unit { li, hour, days }))
            .collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let loc = LocationProfile::paper_table2().into_iter().nth(unit.li).expect("location");
        let campaign = Campaign::new(loc, 0xF164 + unit.li as u64);
        let mut cells = vec![format!("loc{}", unit.li + 1), format!("{:02.0}:00", unit.hour)];
        let mut five_dl_mean = 0.0;
        let mut one_dl_mean = 0.0;
        for &cluster in &[1usize, 3, 5] {
            let dl = Summary::of(&campaign.per_device_throughput(
                cluster,
                &[unit.hour],
                unit.days,
                Direction::Down,
            ));
            let ul = Summary::of(&campaign.per_device_throughput(
                cluster,
                &[unit.hour],
                unit.days,
                Direction::Up,
            ));
            if cluster == 5 {
                five_dl_mean = dl.mean;
            }
            if cluster == 1 {
                one_dl_mean = dl.mean;
            }
            cells.push(mbps(dl.mean));
            cells.push(mbps(ul.mean));
        }
        Partial { cells, five_dl_mean, one_dl_mean }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        // Per-device throughput variability across the day, cluster
        // of 5; samples accumulate in unit order so the summary is
        // identical to the serial sweep's.
        let five_dev_dl_all: Vec<f64> = partials.iter().map(|p| p.five_dl_mean).collect();
        let one_dev_dl_max =
            partials.iter().map(|p| p.one_dl_mean).fold(0.0_f64, |acc, v| acc.max(v));
        let five = Summary::of(&five_dev_dl_all);
        let rel_var = if five.mean > 0.0 { five.sd / five.mean } else { 0.0 };
        Report::new(
            self.id(),
            "Fig 4: per-device throughput by hour (clusters 1/3/5, six locations)",
        )
        .headers(&[
            "location", "hour", "1dev dl", "1dev ul", "3dev dl", "3dev ul", "5dev dl", "5dev ul",
        ])
        .rows(partials.into_iter().map(|p| p.cells))
        .check(
            "single-device ceiling",
            "single device up to ~2.5 Mbit/s depending on hour",
            format!("max per-device mean {} Mbit/s", mbps(one_dev_dl_max)),
            one_dev_dl_max > 1.2e6 && one_dev_dl_max < 4.5e6,
        )
        .check(
            "diurnal variation is modest",
            "diurnal throughput variations exist but are rather small",
            format!("5-device per-device dl rel. σ across hours/locations = {rel_var:.2}"),
            rel_var < 0.5,
        )
        .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig4_shape_holds() {
        let r = Fig04.run_serial(Scale::new(0.15).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
