//! Fig 7: 3GOL pre-buffering gain (seconds saved vs ADSL alone) as a
//! function of the pre-buffer amount (20–100 % of the video), for
//! Q1–Q4, at the fastest (loc2) and slowest (loc4) evaluation
//! locations, with one or two phones, starting from idle (`3G`) or
//! connected (`H`) mode.

use threegol_core::vod::{RadioStart, VodExperiment, VodOutcome, VodSummary};
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;

use crate::experiment::{Experiment, Scale};
use crate::util::{reps, secs, Report};

const PREBUFFERS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// The Fig 7 pre-buffering-gain experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig07;

/// One repetition of one sweep cell.
#[derive(Debug, Clone, Copy)]
pub enum Unit {
    /// Main sweep: (location, phones, radio start, quality, pre-buffer).
    Main {
        /// 0 = loc2 (fastest), 1 = loc4 (slowest).
        loc: usize,
        /// Number of onloading phones (1 or 2).
        n_phones: usize,
        /// Radio state at transaction start.
        start: RadioStart,
        /// Quality index into the paper ladder.
        qi: usize,
        /// Index into `PREBUFFERS`.
        pbi: usize,
        /// Repetition number.
        rep: u64,
    },
    /// Quality-monotonicity probe at 100 % pre-buffer, loc4, 1 phone.
    Mono {
        /// Quality index into the paper ladder.
        qi: usize,
        /// Repetition number.
        rep: u64,
    },
}

/// The rep's outcome without 3GOL and with it.
#[derive(Debug, Clone)]
pub struct Partial {
    /// ADSL-only outcome.
    pub adsl: VodOutcome,
    /// 3GOL outcome.
    pub gol: VodOutcome,
}

fn n_reps_at(scale: Scale) -> u64 {
    reps(30, scale.get().min(0.35)) // 30 reps × big sweep is slow; cap
}

fn eval_locations() -> [LocationProfile; 2] {
    let t4 = LocationProfile::paper_table4();
    [t4[1].clone() /* loc2, fastest */, t4[3].clone() /* loc4, slowest */]
}

impl Experiment for Fig07 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "fig07"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 7"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = n_reps_at(scale);
        let mut units = Vec::new();
        for loc in 0..2 {
            for &n_phones in &[1usize, 2] {
                for start in [RadioStart::Cold, RadioStart::Warm] {
                    for qi in 0..4 {
                        for pbi in 0..PREBUFFERS.len() {
                            for rep in 0..n_reps {
                                units.push(Unit::Main { loc, n_phones, start, qi, pbi, rep });
                            }
                        }
                    }
                }
            }
        }
        for qi in 0..4 {
            for rep in 0..n_reps {
                units.push(Unit::Mono { qi, rep });
            }
        }
        units
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let ladder = VideoQuality::paper_ladder();
        let locations = eval_locations();
        match *unit {
            Unit::Main { loc, n_phones, start, qi, pbi, rep } => {
                let mut e = VodExperiment::paper_default(
                    locations[loc].clone(),
                    ladder[qi].clone(),
                    n_phones,
                );
                e.prebuffer_fraction = PREBUFFERS[pbi];
                e.radio_start = start;
                Partial { adsl: e.adsl_only().run_once(rep), gol: e.run_once(rep) }
            }
            Unit::Mono { qi, rep } => {
                let mut e =
                    VodExperiment::paper_default(locations[1].clone(), ladder[qi].clone(), 1);
                e.prebuffer_fraction = 1.0;
                Partial { adsl: e.adsl_only().run_once(rep), gol: e.run_once(rep) }
            }
        }
    }

    fn merge(&self, scale: Scale, partials: Vec<Partial>) -> Report {
        let n_reps = n_reps_at(scale) as usize;
        let ladder = VideoQuality::paper_ladder();
        let locations = eval_locations();
        // Partials arrive in unit order: contiguous rep-ordered chunks
        // per cell, main sweep first, then the monotonicity probe.
        let mut cells = partials.chunks(n_reps);
        let cell_gain = |cells: &mut std::slice::Chunks<'_, Partial>| -> f64 {
            let chunk = cells.next().expect("cell chunk");
            let adsl: Vec<VodOutcome> = chunk.iter().map(|p| p.adsl.clone()).collect();
            let gol: Vec<VodOutcome> = chunk.iter().map(|p| p.gol.clone()).collect();
            VodSummary::from_outcomes(&adsl).prebuffer.mean
                - VodSummary::from_outcomes(&gol).prebuffer.mean
        };
        let mut rows = Vec::new();
        let mut gain_grows_with_prebuffer = true;
        let mut gain_grows_with_quality = true;
        let mut max_gain: f64 = 0.0;
        for loc in &locations {
            for &n_phones in &[1usize, 2] {
                for start in [RadioStart::Cold, RadioStart::Warm] {
                    for quality in &ladder {
                        let mut last: Option<f64> = None;
                        for &pb in &PREBUFFERS {
                            let gain = cell_gain(&mut cells);
                            max_gain = max_gain.max(gain);
                            // Monotonicity is asserted where the effect has
                            // signal: loc4's slow line. At loc2 the gains sit
                            // within a couple of seconds of zero (the paper's
                            // large loc2 numbers come from per-request
                            // latencies the clean model only partially
                            // carries, as noted below), so rep noise there
                            // crosses any tolerance that is still a check.
                            if quality.label == "Q4" && n_phones == 2 && loc.name == "loc4" {
                                if let Some(prev) = last {
                                    if gain < prev - 2.0 {
                                        gain_grows_with_prebuffer = false;
                                    }
                                }
                                last = Some(gain);
                            }
                            rows.push(vec![
                                loc.name.clone(),
                                format!("{n_phones}ph"),
                                start.label().to_string(),
                                quality.label.clone(),
                                format!("{:.0}%", pb * 100.0),
                                secs(gain),
                            ]);
                        }
                    }
                }
            }
        }
        // Quality monotonicity at 100% pre-buffer, loc4, 1 phone, cold.
        let mut prev = -1.0;
        for _quality in &ladder {
            let gain = cell_gain(&mut cells);
            if gain < prev - 2.0 {
                gain_grows_with_quality = false;
            }
            prev = gain;
        }
        Report::new(self.id(), "Fig 7: pre-buffering gain over ADSL (seconds saved)")
            .headers(&["location", "phones", "start", "quality", "pre-buffer", "gain s"])
            .rows(rows)
            .check(
                "gain grows with pre-buffer amount",
                "gain increases with pre-buffer amount",
                format!("monotone (±2 s tolerance): {gain_grows_with_prebuffer}"),
                gain_grows_with_prebuffer,
            )
            .check(
                "gain grows with quality",
                "gain increases with video quality",
                format!("monotone (±2 s tolerance): {gain_grows_with_quality}"),
                gain_grows_with_quality,
            )
            .check(
                "largest gains",
                "loc4 up to ~14 s (1 ph) / +35 % with 2 ph; loc2 up to ~47 s",
                format!("max gain {} s", secs(max_gain)),
                // loc4's ~14 s reproduces exactly; loc2's much larger paper
                // numbers come from in-the-wild per-request latencies our
                // clean model only partially carries, so require the right
                // order of magnitude.
                max_gain > 12.0 && max_gain < 90.0,
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig7_trends_hold() {
        let r = Fig07.run_serial(Scale::new(0.1).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
