//! Fig 7: 3GOL pre-buffering gain (seconds saved vs ADSL alone) as a
//! function of the pre-buffer amount (20–100 % of the video), for
//! Q1–Q4, at the fastest (loc2) and slowest (loc4) evaluation
//! locations, with one or two phones, starting from idle (`3G`) or
//! connected (`H`) mode.

use threegol_core::vod::{RadioStart, VodExperiment};
use threegol_hls::VideoQuality;
use threegol_radio::LocationProfile;

use crate::util::{reps, secs, table, Check, Report};

/// Regenerate Fig 7 (gain in seconds).
pub fn run(scale: f64) -> Report {
    let n_reps = reps(30, scale.min(0.35)); // 30 reps × big sweep is slow; cap
    let ladder = VideoQuality::paper_ladder();
    let t4 = LocationProfile::paper_table4();
    let locations =
        [t4[1].clone() /* loc2, fastest */, t4[3].clone() /* loc4, slowest */];
    let prebuffers = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut rows = Vec::new();
    let mut gain_grows_with_prebuffer = true;
    let mut gain_grows_with_quality = true;
    let mut max_gain: f64 = 0.0;
    for loc in &locations {
        for &n_phones in &[1usize, 2] {
            for start in [RadioStart::Cold, RadioStart::Warm] {
                for quality in &ladder {
                    let mut last: Option<f64> = None;
                    for &pb in &prebuffers {
                        let mut e =
                            VodExperiment::paper_default(loc.clone(), quality.clone(), n_phones);
                        e.prebuffer_fraction = pb;
                        e.radio_start = start;
                        let adsl = e.adsl_only().run_mean(n_reps);
                        let gol = e.run_mean(n_reps);
                        let gain = adsl.prebuffer.mean - gol.prebuffer.mean;
                        max_gain = max_gain.max(gain);
                        // Monotonicity is asserted where the effect has
                        // signal: loc4's slow line. At loc2 the gains sit
                        // within a couple of seconds of zero (the paper's
                        // large loc2 numbers come from per-request
                        // latencies the clean model only partially
                        // carries, as noted below), so rep noise there
                        // crosses any tolerance that is still a check.
                        if quality.label == "Q4" && n_phones == 2 && loc.name == "loc4" {
                            if let Some(prev) = last {
                                if gain < prev - 2.0 {
                                    gain_grows_with_prebuffer = false;
                                }
                            }
                            last = Some(gain);
                        }
                        rows.push(vec![
                            loc.name.clone(),
                            format!("{n_phones}ph"),
                            start.label().to_string(),
                            quality.label.clone(),
                            format!("{:.0}%", pb * 100.0),
                            secs(gain),
                        ]);
                    }
                }
            }
        }
    }
    // Quality monotonicity at 100% pre-buffer, loc4, 1 phone, cold.
    let mut prev = -1.0;
    for quality in &ladder {
        let mut e = VodExperiment::paper_default(locations[1].clone(), quality.clone(), 1);
        e.prebuffer_fraction = 1.0;
        let gain =
            e.adsl_only().run_mean(n_reps).prebuffer.mean - e.run_mean(n_reps).prebuffer.mean;
        if gain < prev - 2.0 {
            gain_grows_with_quality = false;
        }
        prev = gain;
    }
    let checks = vec![
        Check::new(
            "gain grows with pre-buffer amount",
            "gain increases with pre-buffer amount",
            format!("monotone (±2 s tolerance): {gain_grows_with_prebuffer}"),
            gain_grows_with_prebuffer,
        ),
        Check::new(
            "gain grows with quality",
            "gain increases with video quality",
            format!("monotone (±2 s tolerance): {gain_grows_with_quality}"),
            gain_grows_with_quality,
        ),
        Check::new(
            "largest gains",
            "loc4 up to ~14 s (1 ph) / +35 % with 2 ph; loc2 up to ~47 s",
            format!("max gain {} s", secs(max_gain)),
            // loc4's ~14 s reproduces exactly; loc2's much larger paper
            // numbers come from in-the-wild per-request latencies our
            // clean model only partially carries, so require the right
            // order of magnitude.
            max_gain > 12.0 && max_gain < 90.0,
        ),
    ];
    Report {
        id: "fig07",
        title: "Fig 7: pre-buffering gain over ADSL (seconds saved)",
        body: table(&["location", "phones", "start", "quality", "pre-buffer", "gain s"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig7_trends_hold() {
        let r = super::run(0.1);
        assert!(r.all_ok(), "{}", r.render());
    }
}
