//! Fig 9: total upload time for the 30-photo set (ADSL alone vs 3GOL
//! with one and two devices starting from idle) at the five evaluation
//! locations.

use threegol_core::upload::UploadExperiment;
use threegol_radio::LocationProfile;

use crate::experiment::{Experiment, Scale};
use crate::util::{reps, secs, Report};

/// The Fig 9 photo-upload experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig09;

/// One (location, device-count) cell: all its repetitions.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Index into the five Table 4 evaluation locations.
    pub li: usize,
    /// Number of onloading phones (0 = ADSL alone).
    pub n_phones: usize,
    /// Repetitions per cell.
    pub n_reps: u64,
}

/// Mean total upload time for one cell, seconds.
#[derive(Debug, Clone, Copy)]
pub struct Partial {
    /// Mean of `total` across the cell's repetitions.
    pub total_mean: f64,
}

impl Experiment for Fig09 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "fig09"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 9"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = reps(10, scale.get());
        (0..LocationProfile::paper_table4().len())
            .flat_map(|li| (0..=2).map(move |n_phones| Unit { li, n_phones, n_reps }))
            .collect()
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let loc = LocationProfile::paper_table4().into_iter().nth(unit.li).expect("location");
        Partial {
            total_mean: UploadExperiment::paper_default(loc, unit.n_phones)
                .run_mean(unit.n_reps)
                .total
                .mean,
        }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        let locations = LocationProfile::paper_table4();
        // Unit order: per location, ADSL then 1 then 2 phones.
        let mut triples = partials.chunks(3);
        let mut rows = Vec::new();
        let mut red1: Vec<f64> = Vec::new();
        let mut red2: Vec<f64> = Vec::new();
        for loc in &locations {
            let t = triples.next().expect("location triple");
            let (adsl, one, two) = (t[0].total_mean, t[1].total_mean, t[2].total_mean);
            red1.push((adsl - one) / adsl);
            red2.push((adsl - two) / adsl);
            rows.push(vec![
                loc.name.clone(),
                secs(adsl),
                secs(one),
                secs(two),
                format!("×{:.1}/×{:.1}", adsl / one, adsl / two),
            ]);
        }
        let r1_min = red1.iter().cloned().fold(f64::INFINITY, f64::min);
        let r1_max = red1.iter().cloned().fold(0.0, f64::max);
        let r2_min = red2.iter().cloned().fold(f64::INFINITY, f64::min);
        let r2_max = red2.iter().cloned().fold(0.0, f64::max);
        Report::new(self.id(), "Fig 9: 30-photo upload time (s): ADSL vs 1 and 2 devices")
            .headers(&["location", "ADSL s", "1 phone s", "2 phones s", "speedup (1ph/2ph)"])
            .rows(rows)
            .check(
                "one-device reduction",
                "31 % – 75 % (speedup ×1.5–×4.0)",
                format!("{:.0}% – {:.0}%", r1_min * 100.0, r1_max * 100.0),
                r1_min > 0.2 && r1_max < 0.85,
            )
            .check(
                "two-device reduction",
                "54 % – 84 % (speedup ×2.2–×6.2)",
                format!("{:.0}% – {:.0}%", r2_min * 100.0, r2_max * 100.0),
                r2_min > 0.35 && r2_max < 0.92,
            )
            .check(
                "two devices beat one everywhere",
                "second device always reduces upload time",
                format!(
                    "min gap {:.0} pp",
                    red2.iter()
                        .zip(&red1)
                        .map(|(b, a)| (b - a) * 100.0)
                        .fold(f64::INFINITY, f64::min)
                ),
                red2.iter().zip(&red1).all(|(b, a)| b >= a),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig9_reductions_hold() {
        let r = Fig09.run_serial(Scale::new(0.2).unwrap());
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 5);
    }
}
