//! Fig 9: total upload time for the 30-photo set (ADSL alone vs 3GOL
//! with one and two devices starting from idle) at the five evaluation
//! locations.

use threegol_core::upload::UploadExperiment;
use threegol_radio::LocationProfile;

use crate::util::{reps, secs, table, Check, Report};

/// Regenerate Fig 9.
pub fn run(scale: f64) -> Report {
    let n_reps = reps(10, scale);
    let locations = LocationProfile::paper_table4();
    let mut rows = Vec::new();
    let mut red1: Vec<f64> = Vec::new();
    let mut red2: Vec<f64> = Vec::new();
    for loc in &locations {
        let e0 = UploadExperiment::paper_default(loc.clone(), 0);
        let adsl = e0.run_mean(n_reps).total.mean;
        let one = UploadExperiment::paper_default(loc.clone(), 1).run_mean(n_reps).total.mean;
        let two = UploadExperiment::paper_default(loc.clone(), 2).run_mean(n_reps).total.mean;
        red1.push((adsl - one) / adsl);
        red2.push((adsl - two) / adsl);
        rows.push(vec![
            loc.name.clone(),
            secs(adsl),
            secs(one),
            secs(two),
            format!("×{:.1}/×{:.1}", adsl / one, adsl / two),
        ]);
    }
    let r1_min = red1.iter().cloned().fold(f64::INFINITY, f64::min);
    let r1_max = red1.iter().cloned().fold(0.0, f64::max);
    let r2_min = red2.iter().cloned().fold(f64::INFINITY, f64::min);
    let r2_max = red2.iter().cloned().fold(0.0, f64::max);
    let checks = vec![
        Check::new(
            "one-device reduction",
            "31 % – 75 % (speedup ×1.5–×4.0)",
            format!("{:.0}% – {:.0}%", r1_min * 100.0, r1_max * 100.0),
            r1_min > 0.2 && r1_max < 0.85,
        ),
        Check::new(
            "two-device reduction",
            "54 % – 84 % (speedup ×2.2–×6.2)",
            format!("{:.0}% – {:.0}%", r2_min * 100.0, r2_max * 100.0),
            r2_min > 0.35 && r2_max < 0.92,
        ),
        Check::new(
            "two devices beat one everywhere",
            "second device always reduces upload time",
            format!(
                "min gap {:.0} pp",
                red2.iter().zip(&red1).map(|(b, a)| (b - a) * 100.0).fold(f64::INFINITY, f64::min)
            ),
            red2.iter().zip(&red1).all(|(b, a)| b >= a),
        ),
    ];
    Report {
        id: "fig09",
        title: "Fig 9: 30-photo upload time (s): ADSL vs 1 and 2 devices",
        body: table(&["location", "ADSL s", "1 phone s", "2 phones s", "speedup (1ph/2ph)"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig9_reductions_hold() {
        let r = super::run(0.2);
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 2 + 5);
    }
}
