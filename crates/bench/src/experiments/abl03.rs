//! Ablation: the §2.3 LTE outlook.
//!
//! > "If 4G is available, the concept of 3GOL is even more compelling.
//! > With the reduced latency, and the large increase of bandwidth,
//! > the period of powerboosting time might be extremely short."
//!
//! Same video, same locations, phones swapped from HSPA to LTE.

use threegol_core::vod::VodExperiment;
use threegol_hls::VideoQuality;
use threegol_radio::{LocationProfile, RadioGeneration};

use crate::experiment::{Experiment, Scale};
use crate::util::{reps, secs, Report};

/// The LTE-outlook ablation.
#[derive(Debug, Clone, Copy)]
pub struct Abl03;

/// One configuration cell: all its repetitions.
#[derive(Debug, Clone, Copy)]
pub struct Unit {
    /// Phone radio generation; ignored when `n_phones` is 0.
    pub generation: RadioGeneration,
    /// Number of onloading phones (0 = ADSL alone).
    pub n_phones: usize,
    /// Repetitions per cell.
    pub n_reps: u64,
}

/// One cell's mean download and pre-buffer times.
#[derive(Debug, Clone, Copy)]
pub struct Partial {
    /// Mean total download time, seconds.
    pub download_mean: f64,
    /// Mean pre-buffer time, seconds.
    pub prebuffer_mean: f64,
}

impl Experiment for Abl03 {
    type Unit = Unit;
    type Partial = Partial;

    fn id(&self) -> &'static str {
        "abl03"
    }

    fn paper_artifact(&self) -> &'static str {
        "Ablation: LTE outlook (§2.3)"
    }

    fn units(&self, scale: Scale) -> Vec<Unit> {
        let n_reps = reps(10, scale.get());
        let mut units = vec![Unit { generation: RadioGeneration::Hspa, n_phones: 0, n_reps }];
        for generation in [RadioGeneration::Hspa, RadioGeneration::Lte] {
            for n_phones in [1usize, 2] {
                units.push(Unit { generation, n_phones, n_reps });
            }
        }
        units
    }

    fn run_unit(&self, unit: &Unit) -> Partial {
        let q4 = VideoQuality::paper_ladder().swap_remove(3);
        let mut e =
            VodExperiment::paper_default(LocationProfile::reference_2mbps(), q4, unit.n_phones);
        e.generation = unit.generation;
        let s = e.run_mean(unit.n_reps);
        Partial { download_mean: s.download.mean, prebuffer_mean: s.prebuffer.mean }
    }

    fn merge(&self, _scale: Scale, partials: Vec<Partial>) -> Report {
        // Unit order: ADSL baseline, then HSPA ×1/×2, then LTE ×1/×2.
        let adsl = partials[0];
        let mut rows = vec![vec![
            "ADSL alone".into(),
            "-".into(),
            secs(adsl.download_mean),
            secs(adsl.prebuffer_mean),
        ]];
        let mut means = std::collections::HashMap::new();
        let mut rest = partials[1..].iter();
        for generation in [RadioGeneration::Hspa, RadioGeneration::Lte] {
            for n_phones in [1usize, 2] {
                let p = rest.next().expect("configuration cell");
                means.insert((generation, n_phones), p.download_mean);
                rows.push(vec![
                    format!("{generation:?} ×{n_phones}"),
                    format!("{n_phones}"),
                    secs(p.download_mean),
                    secs(p.prebuffer_mean),
                ]);
            }
        }
        let hspa2 = means[&(RadioGeneration::Hspa, 2)];
        let lte1 = means[&(RadioGeneration::Lte, 1)];
        let lte2 = means[&(RadioGeneration::Lte, 2)];
        Report::new(self.id(), "Ablation: HSPA vs LTE phones (§2.3 outlook)")
            .headers(&["setup", "phones", "download s", "prebuffer s"])
            .rows(rows)
            .check(
                "one LTE phone beats two HSPA phones",
                "4G makes 3GOL even more compelling",
                format!("LTE×1 {} s vs HSPA×2 {} s", secs(lte1), secs(hspa2)),
                lte1 < hspa2,
            )
            .check(
                "powerboosting period collapses",
                "the boosting period might be extremely short",
                format!(
                    "ADSL {} s → LTE×2 {} s (×{:.1})",
                    secs(adsl.download_mean),
                    secs(lte2),
                    adsl.download_mean / lte2
                ),
                lte2 < adsl.download_mean / 3.0,
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn lte_ablation_holds() {
        let r = Abl03.run_serial(Scale::new(0.3).unwrap());
        assert!(r.all_ok(), "{}", r.render());
    }
}
