//! Ablation: the §2.3 LTE outlook.
//!
//! > "If 4G is available, the concept of 3GOL is even more compelling.
//! > With the reduced latency, and the large increase of bandwidth,
//! > the period of powerboosting time might be extremely short."
//!
//! Same video, same locations, phones swapped from HSPA to LTE.

use threegol_core::vod::VodExperiment;
use threegol_hls::VideoQuality;
use threegol_radio::{LocationProfile, RadioGeneration};

use crate::util::{reps, secs, table, Check, Report};

/// Run the LTE ablation.
pub fn run(scale: f64) -> Report {
    let n_reps = reps(10, scale);
    let q4 = VideoQuality::paper_ladder().swap_remove(3);
    let location = LocationProfile::reference_2mbps();
    let mut rows = Vec::new();
    let mut means = std::collections::HashMap::new();
    let adsl = VodExperiment::paper_default(location.clone(), q4.clone(), 0).run_mean(n_reps);
    rows.push(vec![
        "ADSL alone".into(),
        "-".into(),
        secs(adsl.download.mean),
        secs(adsl.prebuffer.mean),
    ]);
    for generation in [RadioGeneration::Hspa, RadioGeneration::Lte] {
        for n_phones in [1usize, 2] {
            let mut e = VodExperiment::paper_default(location.clone(), q4.clone(), n_phones);
            e.generation = generation;
            let s = e.run_mean(n_reps);
            means.insert((generation, n_phones), s.download.mean);
            rows.push(vec![
                format!("{generation:?} ×{n_phones}"),
                format!("{n_phones}"),
                secs(s.download.mean),
                secs(s.prebuffer.mean),
            ]);
        }
    }
    let hspa2 = means[&(RadioGeneration::Hspa, 2)];
    let lte1 = means[&(RadioGeneration::Lte, 1)];
    let lte2 = means[&(RadioGeneration::Lte, 2)];
    let checks = vec![
        Check::new(
            "one LTE phone beats two HSPA phones",
            "4G makes 3GOL even more compelling",
            format!("LTE×1 {} s vs HSPA×2 {} s", secs(lte1), secs(hspa2)),
            lte1 < hspa2,
        ),
        Check::new(
            "powerboosting period collapses",
            "the boosting period might be extremely short",
            format!(
                "ADSL {} s → LTE×2 {} s (×{:.1})",
                secs(adsl.download.mean),
                secs(lte2),
                adsl.download.mean / lte2
            ),
            lte2 < adsl.download.mean / 3.0,
        ),
    ];
    Report {
        id: "abl03",
        title: "Ablation: HSPA vs LTE phones (§2.3 outlook)",
        body: table(&["setup", "phones", "download s", "prebuffer s"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn lte_ablation_holds() {
        let r = super::run(0.3);
        assert!(r.all_ok(), "{}", r.render());
    }
}
