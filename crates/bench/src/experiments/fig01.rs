//! Fig 1: normalized diurnal traffic on the cellular and wired
//! networks, with offset peaks.

use threegol_traces::diurnal::{fig1_series, mobile_diurnal_load, wired_diurnal_load};

use crate::util::{table, Check, Report};

/// Regenerate the Fig 1 series.
pub fn run() -> Report {
    let series = fig1_series();
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|&(h, m, w)| vec![format!("{h:02}:00"), format!("{m:.2}"), format!("{w:.2}")])
        .collect();
    let mobile_peak = mobile_diurnal_load().peak_hour();
    let wired_peak = wired_diurnal_load().peak_hour();
    let night = mobile_diurnal_load().normalized_peak().at_hour(4.0);
    let checks = vec![
        Check::new(
            "peak offset",
            "mobile and wired peaks not aligned",
            format!("mobile {mobile_peak}:00, wired {wired_peak}:00"),
            mobile_peak != wired_peak,
        ),
        Check::new(
            "cellular diurnal valley",
            "cellular not constantly loaded",
            format!("mobile load at 04:00 = {night:.2} of peak"),
            night < 0.4,
        ),
    ];
    Report {
        id: "fig01",
        title: "Fig 1: diurnal traffic pattern, cellular vs wired (normalized)",
        body: table(&["hour", "mobile", "wired"], &rows),
        checks,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_checks_pass() {
        let r = super::run();
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 26); // header + rule + 24 hours
    }
}
