//! Fig 1: normalized diurnal traffic on the cellular and wired
//! networks, with offset peaks.

use threegol_traces::diurnal::{fig1_series, mobile_diurnal_load, wired_diurnal_load};

use crate::experiment::{Experiment, Scale};
use crate::util::Report;

/// The Fig 1 diurnal-pattern experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig01;

impl Experiment for Fig01 {
    // Deterministic trace lookup: one unit regenerates everything.
    type Unit = ();
    type Partial = Report;

    fn id(&self) -> &'static str {
        "fig01"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figure 1"
    }

    fn units(&self, _scale: Scale) -> Vec<()> {
        vec![()]
    }

    fn run_unit(&self, _unit: &()) -> Report {
        let series = fig1_series();
        let rows = series
            .iter()
            .map(|&(h, m, w)| vec![format!("{h:02}:00"), format!("{m:.2}"), format!("{w:.2}")]);
        let mobile_peak = mobile_diurnal_load().peak_hour();
        let wired_peak = wired_diurnal_load().peak_hour();
        let night = mobile_diurnal_load().normalized_peak().at_hour(4.0);
        Report::new(self.id(), "Fig 1: diurnal traffic pattern, cellular vs wired (normalized)")
            .headers(&["hour", "mobile", "wired"])
            .rows(rows)
            .check(
                "peak offset",
                "mobile and wired peaks not aligned",
                format!("mobile {mobile_peak}:00, wired {wired_peak}:00"),
                mobile_peak != wired_peak,
            )
            .check(
                "cellular diurnal valley",
                "cellular not constantly loaded",
                format!("mobile load at 04:00 = {night:.2} of peak"),
                night < 0.4,
            )
            .finish()
    }

    fn merge(&self, _scale: Scale, mut partials: Vec<Report>) -> Report {
        partials.pop().expect("one unit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::DynExperiment;

    #[test]
    fn fig1_checks_pass() {
        let r = Fig01.run_serial(Scale::FULL);
        assert!(r.all_ok(), "{}", r.render());
        assert_eq!(r.body.lines().count(), 26); // header + rule + 24 hours
    }
}
