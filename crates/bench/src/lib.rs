//! # threegol-bench
//!
//! The reproduction harness: one module per table/figure of the
//! paper's evaluation, each regenerating the corresponding rows or
//! series from the models in this workspace and checking the headline
//! numbers against the paper.
//!
//! Run a single experiment:
//!
//! ```text
//! cargo run -p threegol-bench --release --bin fig06_schedulers
//! ```
//!
//! Run everything and emit an EXPERIMENTS.md-ready report:
//!
//! ```text
//! cargo run -p threegol-bench --release --bin repro_all
//! ```

pub mod experiments;
pub mod util;

pub use util::{Check, Report};

/// All experiment ids in paper order.
pub const ALL_IDS: &[&str] = &[
    "cap02", "fig01", "fig03", "fig04", "fig05", "tab02", "tab03", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11a", "fig11b", "fig11c", "tab04", "est06",
];

/// Ablations beyond the paper's evaluation (design-choice and outlook
/// experiments DESIGN.md calls out).
pub const ABLATION_IDS: &[&str] = &["abl01", "abl02", "abl03", "abl04", "abl05"];

/// Run one experiment by id.
///
/// `scale` in `(0, 1]` shrinks repetition counts / population sizes so
/// criterion benches can run the same code quickly; the repro binaries
/// use 1.0.
pub fn run_experiment(id: &str, scale: f64) -> Report {
    match id {
        "cap02" => experiments::cap02::run(),
        "fig01" => experiments::fig01::run(),
        "fig03" => experiments::fig03::run(scale),
        "fig04" => experiments::fig04::run(scale),
        "fig05" => experiments::fig05::run(scale),
        "tab02" => experiments::tab02::run(scale),
        "tab03" => experiments::tab03::run(scale),
        "fig06" => experiments::fig06::run(scale),
        "fig07" => experiments::fig07::run(scale),
        "fig08" => experiments::fig08::run(scale),
        "fig09" => experiments::fig09::run(scale),
        "fig10" => experiments::fig10::run(scale),
        "fig11a" => experiments::fig11a::run(scale),
        "fig11b" => experiments::fig11b::run(scale),
        "fig11c" => experiments::fig11c::run(scale),
        "tab04" => experiments::tab04::run(scale),
        "est06" => experiments::est06::run(scale),
        "abl01" => experiments::abl01::run(scale),
        "abl02" => experiments::abl02::run(scale),
        "abl03" => experiments::abl03::run(scale),
        "abl04" => experiments::abl04::run(scale),
        "abl05" => experiments::abl05::run(scale),
        other => panic!("unknown experiment id {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_id_dispatches() {
        // Smoke-run the cheap experiments end to end.
        for id in ["cap02", "fig01", "fig10", "fig11c", "est06"] {
            let r = run_experiment(id, 0.2);
            assert_eq!(r.id, id);
            assert!(!r.body.is_empty());
        }
    }

    #[test]
    #[should_panic]
    fn unknown_id_panics() {
        run_experiment("nope", 1.0);
    }
}
