#![warn(missing_docs)]

//! # threegol-bench
//!
//! The reproduction harness: one module per table/figure of the
//! paper's evaluation, each regenerating the corresponding rows or
//! series from the models in this workspace and checking the headline
//! numbers against the paper.
//!
//! Every experiment implements the typed [`Experiment`] trait: it
//! decomposes into independent seeded replication units which a
//! work-stealing [`Pool`] shards across cores, and the partial results
//! merge in unit order — so reports are byte-identical for any worker
//! count (see `experiment` and `exec` module docs).
//!
//! Run a single experiment (optionally at a reduced scale / explicit
//! worker count):
//!
//! ```text
//! cargo run -p threegol-bench --release --bin fig06_schedulers [scale] [workers]
//! ```
//!
//! Run everything and emit an EXPERIMENTS.md-ready report:
//!
//! ```text
//! cargo run -p threegol-bench --release --bin repro_all [scale] [workers]
//! ```
//!
//! Beyond the simulator experiments, the [`fleet`] module streams
//! whole live-prototype households (virtual-net tokio runtimes)
//! through the same pool in chunks, folding them into a mergeable
//! [`fleet::FleetDigest`] so fleets of a million homes run in flat
//! memory:
//!
//! ```text
//! cargo run -p threegol-bench --release --bin fleet [homes] [workers] [chunk]
//! ```
//!
//! The `THREEGOL_WORKERS` environment variable overrides the detected
//! core count when no explicit worker argument is given.

pub mod exec;
pub mod experiment;
pub mod experiments;
pub mod fleet;
pub mod relay;
pub mod util;

pub use exec::{fold, map, resolve_workers, Pool};
pub use experiment::{registry, DynExperiment, Experiment, Registry, Scale, ScaleError};
pub use fleet::{run_fleet, FleetDigest, MetricDigest};
pub use util::{Check, Report, ReportBuilder};

/// Shared entry point for the per-experiment binaries: parse
/// `[scale] [workers]` from the command line, run the experiment
/// sharded across a worker pool, render to stdout, and exit non-zero
/// if any paper-vs-measured check failed.
pub fn bin_main(id: &str) {
    let mut args = std::env::args().skip(1);
    let scale = match args.next() {
        None => Scale::FULL,
        Some(raw) => match raw
            .parse::<f64>()
            .map_err(|e| e.to_string())
            .and_then(|v| Scale::new(v).map_err(|e| e.to_string()))
        {
            Ok(scale) => scale,
            Err(err) => {
                eprintln!("invalid scale {raw:?}: {err}");
                std::process::exit(2);
            }
        },
    };
    let workers_arg = match args.next() {
        None => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(w) if w >= 1 => Some(w),
            _ => {
                eprintln!("invalid worker count {raw:?}: expected a positive integer");
                std::process::exit(2);
            }
        },
    };
    let experiment = registry().get(id).expect("binary wired to a registered experiment id");
    let workers = resolve_workers(workers_arg).min(experiment.unit_count(scale).max(1));
    let report = Pool::with(workers, |pool| experiment.run_sharded(scale, pool));
    print!("{}", report.render());
    if !report.all_ok() {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_experiment_runs() {
        // Smoke-run the cheap experiments end to end through the
        // registry + serial path.
        let scale = Scale::new(0.2).unwrap();
        for id in ["cap02", "fig01", "fig10", "fig11c", "est06"] {
            let e = registry().get(id).expect("registered");
            let r = e.run_serial(scale);
            assert_eq!(r.id, id);
            assert!(!r.body.is_empty());
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(registry().get("nope").is_none());
    }
}
