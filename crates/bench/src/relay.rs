//! Proxy relay-path throughput workloads: one unthrottled virtual-net
//! household slice (origin + device proxy) driven as hard as the HTTP
//! hot path allows, shared between the tracked `bench_summary` numbers
//! and the `proxy_throughput` criterion bench.
//!
//! The segment workload pulls large GET bodies through the device
//! relay (origin → device → client); the upload workload pushes
//! multipart photo POSTs the other way. Both run entirely on the
//! in-process virtual network under virtual time, so the measured
//! wall-clock is pure codec + relay + duplex-pipe cost — the numbers
//! this PR's zero-copy streaming path targets.

use std::sync::Arc;

use bytes::Bytes;
use threegol_hls::VideoQuality;
use threegol_http::codec::HttpStream;
use threegol_http::multipart::{encode_multipart, multipart_content_type, Part};
use threegol_http::Request;
use threegol_proxy::{DeviceProxy, OriginServer, RateLimit};
use tokio::net::TcpStream;

/// GET fetches per segment-relay run.
pub const SEGMENT_FETCHES: usize = 4;
/// The origin's `/probe.bin` size, bytes.
pub const SEGMENT_BYTES: usize = 2_000_000;
/// Photo size per upload, bytes.
pub const PHOTO_BYTES: usize = 250_000;
/// Multipart POSTs per upload-relay run.
pub const PHOTO_POSTS: usize = 8;

/// Bytes relayed by one [`segment_relay`] run.
pub const SEGMENT_RUN_BYTES: usize = SEGMENT_FETCHES * SEGMENT_BYTES;
/// Bytes relayed by one [`upload_relay`] run.
pub const UPLOAD_RUN_BYTES: usize = PHOTO_POSTS * PHOTO_BYTES;

/// Spin up an origin and an unthrottled device proxy on the virtual
/// net and return a client connection through the relay.
async fn relay_setup() -> (Arc<OriginServer>, HttpStream<TcpStream>) {
    let ladder = vec![VideoQuality::new("Q1", 64e3)];
    let origin = Arc::new(OriginServer::new(&ladder, 10.0, 2.0));
    let (origin_addr, _h) = origin.clone().spawn("10.9.0.1:8080").await.unwrap();
    let device = Arc::new(DeviceProxy::new(
        "tp",
        origin_addr,
        RateLimit::unlimited(),
        RateLimit::unlimited(),
        f64::MAX,
    ));
    let (lan, _h2) = device.clone().spawn("10.9.0.10:3128").await.unwrap();
    let stream = TcpStream::connect(lan).await.unwrap();
    (origin, HttpStream::new(stream))
}

/// One segment-relay run: [`SEGMENT_FETCHES`] large GETs through the
/// device proxy. Builds its own runtime; returns nothing — time it.
pub fn segment_relay() {
    tokio::runtime::block_on(async {
        let (_origin, mut http) = relay_setup().await;
        for _ in 0..SEGMENT_FETCHES {
            http.write_request(&Request::get("/probe.bin")).await.unwrap();
            let resp = http.read_response().await.unwrap();
            assert_eq!(resp.body.len(), SEGMENT_BYTES);
        }
    });
}

/// One upload-relay run: [`PHOTO_POSTS`] multipart photo POSTs through
/// the device proxy, verified committed at the origin.
pub fn upload_relay() {
    tokio::runtime::block_on(async {
        let (origin, mut http) = relay_setup().await;
        for i in 0..PHOTO_POSTS {
            let part = Part::photo(
                "file",
                format!("IMG_{i:04}.jpg"),
                Bytes::from(vec![i as u8; PHOTO_BYTES]),
            );
            let body = encode_multipart(std::slice::from_ref(&part), "tp-boundary");
            let req = Request::post("/upload", &multipart_content_type("tp-boundary"), body);
            http.write_request(&req).await.unwrap();
            let resp = http.read_response().await.unwrap();
            assert_eq!(resp.status, 200);
        }
        assert_eq!(origin.uploads().len(), PHOTO_POSTS);
    });
}
