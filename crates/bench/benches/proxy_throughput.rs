//! Benchmarks of the live-prototype relay hot path (see `DESIGN.md`
//! "Streaming bodies & vectored I/O" and `BENCH_simnet.json` for the
//! tracked before/after numbers).
//!
//! Two directions through an unthrottled virtual-net device proxy:
//! - `segment_relay`: 4 × 2 MB GET bodies, origin → device → client —
//!   the path the zero-copy streaming codec targets (bounded-window
//!   piping, no whole-segment materialization, gather-writes of
//!   head + body);
//! - `upload_relay`: 8 × 250 kB multipart photo POSTs, client →
//!   device → origin, committed and verified at the origin.
//!
//! Each iteration builds its whole household slice from scratch, so
//! the numbers include connection setup — same shape as the tracked
//! `proxy_throughput_*` rows in `bench_summary`.

use criterion::{criterion_group, criterion_main, Criterion};

use threegol_bench::relay;

fn bench_segment_relay(c: &mut Criterion) {
    let mut group = c.benchmark_group("proxy_throughput");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("segment_relay_8mb", |b| b.iter(relay::segment_relay));
    group.finish();
}

fn bench_upload_relay(c: &mut Criterion) {
    let mut group = c.benchmark_group("proxy_throughput");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("upload_relay_2mb", |b| b.iter(relay::upload_relay));
    group.finish();
}

criterion_group!(proxy_throughput, bench_segment_relay, bench_upload_relay);
criterion_main!(proxy_throughput);
