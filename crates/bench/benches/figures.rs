//! One criterion benchmark per reproduced table/figure: each runs the
//! same experiment code as the `repro_*` binaries at a reduced scale,
//! so `cargo bench` exercises the full harness and tracks regressions
//! in experiment runtime.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    // (id, scale): heavier experiments run at smaller scales.
    let configs: &[(&str, f64)] = &[
        ("cap02", 1.0),
        ("fig01", 1.0),
        ("fig03", 0.3),
        ("fig04", 0.1),
        ("fig05", 0.1),
        ("tab02", 0.25),
        ("tab03", 0.15),
        ("fig06", 0.1),
        ("fig07", 0.07),
        ("fig08", 0.07),
        ("fig09", 0.2),
        ("fig10", 0.1),
        ("fig11a", 0.1),
        ("fig11b", 0.1),
        ("fig11c", 0.1),
        ("tab04", 0.3),
        ("est06", 0.1),
        ("abl01", 0.1),
        ("abl02", 0.1),
        ("abl03", 0.1),
        ("abl04", 0.3),
        ("abl05", 0.1),
    ];
    for &(id, scale) in configs {
        let experiment = threegol_bench::registry().get(id).expect("registered experiment");
        let scale = threegol_bench::Scale::new(scale).expect("valid bench scale");
        group.bench_function(id, |b| {
            // Timing only: shape checks are asserted by the unit tests
            // and the full-scale repro binaries; at bench scales some
            // stochastic checks are too noisy to gate on.
            b.iter(|| std::hint::black_box(experiment.run_serial(scale)))
        });
    }
    group.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
