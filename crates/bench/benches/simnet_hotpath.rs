//! Benchmarks of the reworked simnet hot path (see `DESIGN.md` §7 and
//! `BENCH_simnet.json` for the tracked before/after numbers).
//!
//! Four angles:
//! - `solver`: the allocating reference oracle vs the scratch-backed
//!   `max_min_fair_into` on identical inputs;
//! - `steady_state`: the full event loop on the fig06 shape (one ADSL
//!   home with two onloading phones) where every event is a capacity
//!   resample — the allocation-free path;
//! - `components`: many independent homes, where dirty-component
//!   tracking lets each capacity change re-solve one home instead of
//!   the whole street;
//! - `fleet`: 1000 homes with flow churn (finite flows, each
//!   completion restarts a replacement), the workload the event-local
//!   calendar stepper targets — O(log n) per event instead of a scan
//!   over all flows and links.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use threegol_simnet::capacity::DiurnalProfile;
use threegol_simnet::fairshare::{
    max_min_fair, max_min_fair_into, FairShareScratch, FlowDemand, FlowTable,
};
use threegol_simnet::{CapacityProcess, SimEvent, SimTime, Simulation};

fn solver_inputs(nl: usize, nf: usize) -> (Vec<f64>, Vec<FlowDemand>) {
    let caps: Vec<f64> = (0..nl).map(|i| 1e6 + (i as f64) * 1e5).collect();
    let flows: Vec<FlowDemand> = (0..nf)
        .map(|f| FlowDemand {
            links: vec![f % nl, (f * 7 + 1) % nl],
            cap: if f % 3 == 0 { Some(5e5) } else { None },
        })
        .collect();
    (caps, flows)
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_solver");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (nl, nf) in [(4usize, 8usize), (64, 256)] {
        let (caps, flows) = solver_inputs(nl, nf);
        group.bench_function(format!("reference_l{nl}_f{nf}"), |b| {
            b.iter(|| max_min_fair(std::hint::black_box(&caps), std::hint::black_box(&flows)))
        });
        let table = FlowTable::from_demands(&flows);
        let mut scratch = FairShareScratch::default();
        let mut out = Vec::new();
        group.bench_function(format!("scratch_l{nl}_f{nf}"), |b| {
            b.iter(|| {
                max_min_fair_into(
                    std::hint::black_box(&caps),
                    std::hint::black_box(&table),
                    &mut scratch,
                    &mut out,
                );
                std::hint::black_box(out.len())
            })
        });
    }
    group.finish();
}

fn build_street(n_homes: usize) -> Simulation {
    let mut sim = Simulation::new();
    for h in 0..n_homes as u64 {
        let adsl = sim.add_link(
            format!("adsl{h}"),
            CapacityProcess::stochastic(2e6, 0.3, 1.0, DiurnalProfile::flat(), 1 + h),
        );
        let p1 = sim.add_link(
            format!("3g{h}a"),
            CapacityProcess::stochastic(3e6, 0.4, 1.0, DiurnalProfile::flat(), 100 + h),
        );
        let p2 = sim.add_link(
            format!("3g{h}b"),
            CapacityProcess::stochastic(3e6, 0.4, 1.0, DiurnalProfile::flat(), 200 + h),
        );
        for link in [adsl, p1, p2] {
            sim.start_flow(vec![link], 1e15);
            sim.start_flow(vec![link], 1e15);
        }
    }
    sim
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_steady_state");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("fig06_home_60s", |b| {
        b.iter_batched(
            || build_street(1),
            |mut sim| sim.run_until(SimTime::from_secs(60.0)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_components");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("street_16_homes_30s", |b| {
        b.iter_batched(
            || build_street(16),
            |mut sim| sim.run_until(SimTime::from_secs(30.0)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// One fleet run with churn: every link carries two finite flows and
/// each completion immediately starts a replacement on the same link.
/// Mirrors `bench_summary`'s `fleet_1k_homes` workload (which tracks
/// the full 5-simulated-second numbers in `BENCH_simnet.json`) at a
/// criterion-friendly horizon.
fn run_fleet(n_homes: usize, horizon_secs: f64) -> u64 {
    let mut sim = Simulation::new();
    let mut links = Vec::with_capacity(n_homes * 3);
    for h in 0..n_homes as u64 {
        links.push(sim.add_link(
            format!("adsl{h}"),
            CapacityProcess::stochastic(2e6, 0.3, 1.0, DiurnalProfile::flat(), 1 + h),
        ));
        for p in 0..2u64 {
            links.push(sim.add_link(
                format!("3g{h}_{p}"),
                CapacityProcess::stochastic(
                    3e6,
                    0.4,
                    1.0,
                    DiurnalProfile::flat(),
                    1000 + h * 31 + p,
                ),
            ));
        }
    }
    let mut seq = 0u64;
    let mut next_size = move || {
        seq += 1;
        250_000.0 + (seq * 37_559 % 500_000) as f64
    };
    for &l in &links {
        sim.start_flow(vec![l], next_size());
        sim.start_flow(vec![l], next_size());
    }
    let horizon = SimTime::from_secs(horizon_secs);
    let mut events = 0u64;
    while let Some(ev) = sim.next_event_until(horizon) {
        events += 1;
        if let SimEvent::FlowCompleted { record, .. } = ev {
            sim.start_flow(vec![record.path[0]], next_size());
        }
    }
    events
}

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_fleet");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("fleet_1k_homes_2s", |b| {
        b.iter(|| std::hint::black_box(run_fleet(1000, 2.0)))
    });
    group.finish();
}

criterion_group!(simnet_hotpath, bench_solver, bench_steady_state, bench_components, bench_fleet);
criterion_main!(simnet_hotpath);
