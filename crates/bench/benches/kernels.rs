//! Micro-benchmarks of the hot kernels under the reproduction:
//! max-min fair allocation, the fluid event loop, scheduler decision
//! making, and trace generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use threegol_sched::toy::ToyExecutor;
use threegol_sched::{build, Policy, TransactionSpec};
use threegol_simnet::fairshare::{max_min_fair, FlowDemand};
use threegol_simnet::{CapacityProcess, SimTime, Simulation};
use threegol_traces::dslam::{DslamTrace, DslamTraceConfig};
use threegol_traces::mno::{MnoConfig, MnoTrace};

fn bench_fairshare(c: &mut Criterion) {
    let mut group = c.benchmark_group("fairshare");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (nl, nf) in [(4usize, 8usize), (16, 64), (64, 256)] {
        let caps: Vec<f64> = (0..nl).map(|i| 1e6 + (i as f64) * 1e5).collect();
        let flows: Vec<FlowDemand> = (0..nf)
            .map(|f| FlowDemand {
                links: vec![f % nl, (f * 7 + 1) % nl],
                cap: if f % 3 == 0 { Some(5e5) } else { None },
            })
            .collect();
        group.bench_function(format!("links{nl}_flows{nf}"), |b| {
            b.iter(|| max_min_fair(std::hint::black_box(&caps), std::hint::black_box(&flows)))
        });
    }
    group.finish();
}

fn bench_fluid_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_engine");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("1000_flows_sequential", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new();
                let l = sim.add_link("l", CapacityProcess::constant(1e8));
                for _ in 0..1000 {
                    sim.start_flow(vec![l], 10_000.0);
                }
                sim
            },
            |mut sim| while sim.next_event().is_some() {},
            BatchSize::SmallInput,
        )
    });
    group.bench_function("stochastic_day", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulation::new();
                let l = sim.add_link(
                    "s",
                    CapacityProcess::stochastic(
                        2e6,
                        0.3,
                        1.0,
                        threegol_simnet::capacity::DiurnalProfile::flat(),
                        7,
                    ),
                );
                sim.start_flow(vec![l], 1e9); // long flow across many change points
                sim
            },
            |mut sim| sim.run_until(SimTime::from_secs(600.0)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedulers");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for policy in [Policy::Greedy, Policy::RoundRobin, Policy::min_time_paper()] {
        group.bench_function(format!("{}_100items_4paths", policy.label()), |b| {
            b.iter_batched(
                || {
                    let sizes = vec![250_000.0; 100];
                    let sched = build(policy, TransactionSpec::new(sizes.clone(), 4));
                    let exec = ToyExecutor::new(vec![
                        vec![8e6, 2e6, 4e6],
                        vec![1e6, 3e6],
                        vec![2e6],
                        vec![5e6, 0.5e6],
                    ]);
                    (sched, exec, sizes)
                },
                |(mut sched, mut exec, sizes)| exec.run(sched.as_mut(), &sizes),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("dslam_2000_users", |b| {
        b.iter(|| {
            DslamTrace::generate(DslamTraceConfig { n_users: 2000, ..DslamTraceConfig::default() })
        })
    });
    group.bench_function("mno_5000_users", |b| {
        b.iter(|| MnoTrace::generate(MnoConfig { n_users: 5000, ..MnoConfig::default() }))
    });
    group.finish();
}

criterion_group!(kernels, bench_fairshare, bench_fluid_engine, bench_schedulers, bench_traces);
criterion_main!(kernels);
