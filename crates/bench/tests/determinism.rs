//! The replication-sharding contract: for any worker count, every
//! experiment renders byte-for-byte the same report, because units are
//! seeded by their coordinates and merged in unit order.

use threegol_bench::{registry, Pool, Scale};

#[test]
fn fig06_sharded_output_is_byte_identical_to_serial() {
    let scale = Scale::new(0.15).expect("valid scale");
    let fig06 = registry().get("fig06").expect("fig06 registered");
    let serial = fig06.run_serial(scale);
    for workers in [2, 4, 7] {
        let sharded = Pool::with(workers, |pool| fig06.run_sharded(scale, pool));
        assert_eq!(serial.render(), sharded.render(), "{workers} workers diverged (render)");
        assert_eq!(
            serial.render_markdown(),
            sharded.render_markdown(),
            "{workers} workers diverged (markdown)"
        );
    }
}

#[test]
fn cell_level_experiment_shards_identically() {
    // fig03 shards at (location, device-count) granularity rather than
    // per rep; the merge contract is the same.
    let scale = Scale::new(0.4).expect("valid scale");
    let fig03 = registry().get("fig03").expect("fig03 registered");
    let serial = fig03.run_serial(scale);
    let sharded = Pool::with(4, |pool| fig03.run_sharded(scale, pool));
    assert_eq!(serial.render_markdown(), sharded.render_markdown());
}

#[test]
fn unit_counts_are_stable_across_calls() {
    for experiment in registry().all() {
        let scale = Scale::new(0.1).expect("valid scale");
        assert_eq!(
            experiment.unit_count(scale),
            experiment.unit_count(scale),
            "{} unit decomposition must be deterministic",
            experiment.id()
        );
        assert!(experiment.unit_count(scale) >= 1, "{} has no units", experiment.id());
    }
}
