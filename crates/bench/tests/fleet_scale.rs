//! Memory-profile acceptance for the streamed fleet: peak RSS stays
//! under the documented ceiling and does not grow with the fleet size.
//!
//! This lives in its own integration-test binary (one process, one
//! `#[test]`) so `/proc/self/status` `VmHWM` is attributable to the
//! fleet path and nothing else. The 10k-home associativity /
//! sequential-fold bitwise tests live in `fleet.rs`'s unit tests
//! (synthetic reports, milliseconds); the live worker-count sweep is
//! in `tests/fleet.rs` and the CI fleet-smoke job.

use threegol_bench::fleet::{
    home_spec, peak_rss_bytes, run_fleet, run_fleet_mode, RuntimeMode, DEFAULT_CHUNK,
    FLEET_RSS_CEILING_BYTES,
};
use threegol_bench::Pool;

#[test]
fn streamed_fleet_memory_is_flat_and_under_the_ceiling() {
    let Some(_) = peak_rss_bytes() else {
        eprintln!("no /proc: skipping RSS assertions");
        return;
    };
    let mib = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);

    // Warm-up fleet: binary, allocator arenas, per-worker scratch all
    // reach steady state here.
    let small = Pool::with(4, |pool| run_fleet(500, DEFAULT_CHUNK, pool));
    let peak_after_small = peak_rss_bytes().unwrap();

    // Ten times the homes must not move peak memory: specs are built
    // on worker stacks, reports fold into chunk digests immediately,
    // and the driver only ever holds the reorder buffer of in-flight
    // chunk digests.
    let large = Pool::with(4, |pool| run_fleet(5000, DEFAULT_CHUNK, pool));
    let peak_after_large = peak_rss_bytes().unwrap();

    assert_eq!(small.homes, 500);
    assert_eq!(large.homes, 5000);
    assert!(large.upload_gain.min > 1.0, "worst upload gain {}", large.upload_gain.min);

    assert!(
        peak_after_large <= FLEET_RSS_CEILING_BYTES,
        "peak RSS {:.1} MiB broke the documented {:.0} MiB ceiling",
        mib(peak_after_large),
        mib(FLEET_RSS_CEILING_BYTES)
    );
    let slack = 48 * 1024 * 1024;
    assert!(
        peak_after_large <= peak_after_small + slack,
        "memory grew with fleet size: {:.1} MiB after 500 homes, {:.1} MiB after 5000",
        mib(peak_after_small),
        mib(peak_after_large)
    );

    // The runtime-reuse leak check: 5000 homes through ONE worker is
    // 5000 consecutive `Runtime::reset`s of the same runtime. A reset
    // that retains anything per-home — a task slot, a timer entry, a
    // virtual-net registration, a parked-waker Arc — compounds 5000x
    // and moves the monotonic VmHWM past the slack; a correct reset
    // keeps only the reusable arenas the warm-up already paid for.
    let reused = Pool::with(1, |pool| {
        run_fleet_mode(5000, DEFAULT_CHUNK, pool, home_spec, RuntimeMode::Reuse)
    });
    let peak_after_reuse = peak_rss_bytes().unwrap();
    assert_eq!(reused.homes, 5000);
    assert!(
        peak_after_reuse <= peak_after_small + slack,
        "single reused runtime leaked across homes: {:.1} MiB after warm-up, \
         {:.1} MiB after 5000 sequential resets",
        mib(peak_after_small),
        mib(peak_after_reuse)
    );
}
