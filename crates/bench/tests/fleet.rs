//! Acceptance tests for the streamed proxy-fleet harness: a 200-home
//! fleet completes in one process under virtual time, the fleet digest
//! is byte-identical across repeated runs, worker counts, and chunk
//! sizes, it agrees with the sequential per-report fold, and the
//! traffic never touches a kernel socket.

use threegol_bench::fleet::{
    collect_reports, home_spec, run_fleet, run_fleet_mode, scenario_spec, FleetDigest, RuntimeMode,
    DEFAULT_CHUNK,
};
use threegol_bench::Pool;
use threegol_proxy::Home;
use threegol_traces::DEFAULT_SCENARIO_SEED;

/// Open kernel sockets of this process, per /proc. The virtual-net
/// prototype must never add one.
#[cfg(target_os = "linux")]
fn kernel_socket_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|dir| {
            dir.filter_map(|entry| entry.ok())
                .filter_map(|entry| std::fs::read_link(entry.path()).ok())
                .filter(|target| target.to_string_lossy().starts_with("socket:"))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn two_hundred_home_fleet_is_deterministic_and_kernel_socket_free() {
    #[cfg(target_os = "linux")]
    let sockets_before = kernel_socket_count();

    // Two streamed runs on 4 workers, one on 1 worker (the serial
    // path), one on 7 (a count that doesn't divide the fleet) with a
    // chunk size that doesn't divide it either: every digest field —
    // f64-derived sums and the content hash included — must agree bit
    // for bit.
    let first = Pool::with(4, |pool| run_fleet(200, DEFAULT_CHUNK, pool));
    let second = Pool::with(4, |pool| run_fleet(200, DEFAULT_CHUNK, pool));
    let serial = Pool::with(1, |pool| run_fleet(200, DEFAULT_CHUNK, pool));
    let odd = Pool::with(7, |pool| run_fleet(200, 23, pool));
    assert_eq!(first, second, "same worker count diverged");
    assert_eq!(first, serial, "worker count changed the result");
    assert_eq!(first, odd, "worker/chunk combination changed the result");

    // The streamed digest is exactly the sequential fold of the
    // materialized per-home reports.
    let reports = Pool::with(4, |pool| collect_reports(200, pool));
    let mut refold = FleetDigest::empty();
    for report in &reports {
        refold.observe(report);
    }
    assert_eq!(refold.digest(), first.digest(), "streamed digest != sequential fold");

    #[cfg(target_os = "linux")]
    assert_eq!(kernel_socket_count(), sockets_before, "the fleet path opened a real socket");

    // Sanity on the workload itself.
    assert_eq!(first.homes, 200);
    assert_eq!(reports.len(), 200);
    for (h, report) in reports.iter().enumerate() {
        assert_eq!(report.index as usize, h);
        assert!(report.vod_secs.is_finite() && report.vod_secs > 0.0);
        assert!(report.upload_secs.is_finite() && report.upload_secs > 0.0);
        // Every home has at least one phone, so onloading must help
        // the upload (the ADSL uplink is the bottleneck by design).
        assert!(report.upload_gain > 1.0, "home {h}: upload gain {}", report.upload_gain);
        assert!(report.upload_device_bytes > 0.0, "home {h} never used a phone");
    }
    assert!(first.upload_gain.min > 1.0, "worst upload gain {}", first.upload_gain.min);
    assert!(first.upload_gain.p50() > 1.5, "median upload gain {}", first.upload_gain.p50());
    assert!(first.vod_gain.p50() > 1.0, "median vod gain {}", first.vod_gain.p50());
    assert!(first.net_events > 200 * 10, "implausibly few net events: {}", first.net_events);

    // The recorded pre-scenario baseline: adding the scenario engine
    // (new `HomeReport` fields, `Scenario` on the spec) must leave the
    // paper-default street's digest bit-for-bit where it was.
    assert_eq!(
        format!("{:016x}", first.digest()),
        "8cf467045efaa947",
        "paper-default 200-home digest drifted from the recorded baseline"
    );
}

#[test]
fn traced_scenario_fleet_is_deterministic_across_workers_chunks_and_modes() {
    // The four-invariant contract extended to the scenario engine: a
    // multi-day traced fleet — churn, quota withdrawal, live allowance
    // refits and all — folds to one digest whatever the worker count,
    // chunk size, or runtime mode. The default config churns (devices
    // leave mid-day with p=0.35), so this is also the fleet-level churn
    // determinism proof.
    let (homes, days) = (24usize, 3u16);
    let mut runs = Vec::new();
    for (workers, chunk) in [(1, DEFAULT_CHUNK), (4, 23), (7, 23)] {
        for mode in [RuntimeMode::Reuse, RuntimeMode::Fresh] {
            let digest = Pool::with(workers, |pool| {
                run_fleet_mode(
                    homes,
                    chunk,
                    pool,
                    move |i| scenario_spec(i, days, DEFAULT_SCENARIO_SEED),
                    mode,
                )
            });
            runs.push((workers, chunk, mode, digest));
        }
    }
    let (_, _, _, reference) = &runs[0];
    for (workers, chunk, mode, digest) in &runs[1..] {
        assert_eq!(
            digest, reference,
            "{workers} worker(s) / chunk {chunk} / {mode:?} diverged on the traced fleet"
        );
    }

    // The scenario accumulators are populated and self-consistent.
    let s = &reference.scenario;
    assert_eq!(reference.homes, homes as u64);
    assert_eq!(s.homes, homes as u64);
    assert!(s.sessions > 0, "no sessions over {days} days");
    assert!(
        s.device_days >= (homes * days as usize) as u64,
        "every home has >= 1 device for {days} days: {} device-days",
        s.device_days
    );
    assert!(s.overrun_device_days <= s.device_days);
    let day_dl: f64 = (0..days as usize).map(|d| s.bytes_on_day(d).0).sum();
    let hour_dl: f64 = (0..24).map(|h| s.bytes_at_hour(h).0).sum();
    assert!((day_dl - hour_dl).abs() < 1.0, "day sum {day_dl} != hour sum {hour_dl}");
    let day_ul: f64 = (0..days as usize).map(|d| s.bytes_on_day(d).1).sum();
    assert!(day_dl > 0.0 && day_ul > 0.0, "traced street onloaded nothing");
    assert!((0.0..=1.0).contains(&s.captured_fraction()));
    assert!(reference.render().contains("scenario:"), "render omits the scenario lines");

    // A different seed is a different street.
    let reseeded = Pool::with(4, |pool| {
        run_fleet_mode(
            homes,
            DEFAULT_CHUNK,
            pool,
            move |i| scenario_spec(i, days, DEFAULT_SCENARIO_SEED ^ 0xdead),
            RuntimeMode::Reuse,
        )
    });
    assert_ne!(reseeded.digest(), reference.digest(), "seed did not reach the scenario");
}

#[test]
fn runtime_reuse_is_bitwise_invisible() {
    // The fourth determinism invariant (DESIGN.md §11): the fleet
    // digest is a pure function of (homes, spec) — worker count, chunk
    // size, AND runtime mode included. A reused runtime whose reset
    // leaks any state into the next home (a timer, a task, a clock
    // skew, a virtual-net table entry) shifts some transfer's
    // completion instant and changes the content hash, so bitwise
    // equality across every {workers} x {chunk} x {reuse|fresh}
    // combination is the whole proof.
    let mut runs = Vec::new();
    for (workers, chunk) in [(1, DEFAULT_CHUNK), (4, 23)] {
        for mode in [RuntimeMode::Reuse, RuntimeMode::Fresh] {
            let digest =
                Pool::with(workers, |pool| run_fleet_mode(200, chunk, pool, home_spec, mode));
            runs.push((workers, chunk, mode, digest));
        }
    }
    let (_, _, _, reference) = &runs[0];
    assert_eq!(reference.homes, 200);
    for (workers, chunk, mode, digest) in &runs[1..] {
        assert_eq!(
            digest, reference,
            "{workers} worker(s) / chunk {chunk} / {mode:?} diverged from the reference digest"
        );
    }
}

#[test]
fn home_traffic_is_entirely_virtual() {
    // Count the sockets one home binds: they must all be virtual-net
    // registrations, visible to the runtime's own bookkeeping.
    let spec = home_spec(0);
    let devices = spec.devices as u64;
    let stats = tokio::runtime::block_on(async {
        let report = Home::run(&spec).await.unwrap();
        assert!(report.vod_bytes > 0.0);
        tokio::net::stats()
    });
    // TCP listeners: origin + HLS proxy + one per device.
    assert_eq!(stats.tcp_binds, 2 + devices);
    // At minimum: playlist + segment fetches + uploads + device
    // upstream connections all dialed through the registry.
    assert!(stats.tcp_connects > 2 + devices, "{stats:?}");
    // UDP: the discovery listener plus one ephemeral socket per
    // announcement sent.
    assert!(stats.udp_binds > devices, "{stats:?}");
    assert!(stats.datagrams >= devices, "{stats:?}");
}

#[test]
fn indices_beyond_the_namespace_width_run_fine() {
    // A million-home fleet reaches indices far past the 16-bit subnet
    // plan; each home runs in its own runtime, so the aliased
    // namespace never collides.
    let report =
        tokio::runtime::block_on(Home::run(&home_spec(999_999))).expect("home 999999 runs");
    assert_eq!(report.index, 999_999);
    assert!(report.upload_gain > 1.0);
}
