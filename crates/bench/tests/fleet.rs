//! Acceptance tests for the proxy-fleet harness: a 200-home fleet
//! completes in one process under virtual time, the full report is
//! byte-identical across repeated runs and across worker counts, and
//! the traffic never touches a kernel socket.

use threegol_bench::fleet::{digest, home_spec, run_fleet, summarize};
use threegol_bench::Pool;
use threegol_proxy::Home;

/// Open kernel sockets of this process, per /proc. The virtual-net
/// prototype must never add one.
#[cfg(target_os = "linux")]
fn kernel_socket_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|dir| {
            dir.filter_map(|entry| entry.ok())
                .filter_map(|entry| std::fs::read_link(entry.path()).ok())
                .filter(|target| target.to_string_lossy().starts_with("socket:"))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn two_hundred_home_fleet_is_deterministic_and_kernel_socket_free() {
    #[cfg(target_os = "linux")]
    let sockets_before = kernel_socket_count();

    // Two runs on 4 workers, one on 1 worker (the serial path), one on
    // 7 (a count that doesn't divide the fleet): every home report —
    // f64 timings included — must agree bit for bit.
    let first = Pool::with(4, |pool| run_fleet(200, pool));
    let second = Pool::with(4, |pool| run_fleet(200, pool));
    let serial = Pool::with(1, |pool| run_fleet(200, pool));
    let odd = Pool::with(7, |pool| run_fleet(200, pool));
    assert_eq!(digest(&first), digest(&second), "same worker count diverged");
    assert_eq!(digest(&first), digest(&serial), "worker count changed the result");
    assert_eq!(digest(&first), digest(&odd), "non-dividing worker count changed the result");
    assert_eq!(format!("{first:?}"), format!("{serial:?}"));

    #[cfg(target_os = "linux")]
    assert_eq!(kernel_socket_count(), sockets_before, "the fleet path opened a real socket");

    // Sanity on the workload itself.
    assert_eq!(first.len(), 200);
    for (h, report) in first.iter().enumerate() {
        assert_eq!(report.index as usize, h);
        assert!(report.vod_secs.is_finite() && report.vod_secs > 0.0);
        assert!(report.upload_secs.is_finite() && report.upload_secs > 0.0);
        // Every home has at least one phone, so onloading must help
        // the upload (the ADSL uplink is the bottleneck by design).
        assert!(report.upload_gain > 1.0, "home {h}: upload gain {}", report.upload_gain);
        assert!(report.upload_device_bytes > 0.0, "home {h} never used a phone");
    }
    let summary = summarize(&first);
    assert!(summary.upload_gain.p50 > 1.5, "median upload gain {:?}", summary.upload_gain);
    assert!(summary.vod_gain.p50 > 1.0, "median vod gain {:?}", summary.vod_gain);
}

#[test]
fn home_traffic_is_entirely_virtual() {
    // Count the sockets one home binds: they must all be virtual-net
    // registrations, visible to the runtime's own bookkeeping.
    let spec = home_spec(0);
    let devices = spec.devices as u64;
    let stats = tokio::runtime::block_on(async {
        let report = Home::run(&spec).await.unwrap();
        assert!(report.vod_bytes > 0.0);
        tokio::net::stats()
    });
    // TCP listeners: origin + HLS proxy + one per device.
    assert_eq!(stats.tcp_binds, 2 + devices);
    // At minimum: playlist + segment fetches + uploads + device
    // upstream connections all dialed through the registry.
    assert!(stats.tcp_connects > 2 + devices, "{stats:?}");
    // UDP: the discovery listener plus one ephemeral socket per
    // announcement sent.
    assert!(stats.udp_binds > devices, "{stats:?}");
    assert!(stats.datagrams >= devices, "{stats:?}");
}
