//! The cell-coupled fleet keeps the streamed fleet's determinism
//! contract: with homes sharing 3G cells and capacity fed back
//! between passes, the digest — per-cell accumulators included — is
//! byte-identical for any worker count and chunk size, and the
//! fixed-point loop itself (pass count, convergence verdict, settled
//! share curves) is worker-invariant.

use threegol_bench::fleet::{run_cell_fleet, CellFleetConfig, CellFleetRun};
use threegol_bench::Pool;
use threegol_radio::CellMap;

fn coupled(homes: usize, workers: usize, chunk: usize, config: &CellFleetConfig) -> CellFleetRun {
    Pool::with(workers, |pool| run_cell_fleet(homes, chunk, pool, config))
}

#[test]
fn coupled_digest_is_identical_across_workers_and_chunks() {
    // Two forced passes (tolerance 0 never converges early) so every
    // configuration runs the same fleet the same number of times, with
    // real load→share feedback between the passes.
    let config = CellFleetConfig { tolerance: 0.0, max_passes: 2, ..CellFleetConfig::default() };
    let baseline = coupled(600, 1, 64, &config);
    assert_eq!(baseline.passes, 2);
    assert!(!baseline.converged);

    for (workers, chunk) in [(4, 64), (7, 23), (1, 23)] {
        let other = coupled(600, workers, chunk, &config);
        assert_eq!(
            other.digest, baseline.digest,
            "digest diverged at {workers} workers, chunk {chunk}"
        );
        assert_eq!(other.digest.digest(), baseline.digest.digest());
        assert_eq!(other.digest.cells, baseline.digest.cells, "per-cell accumulators diverged");
        assert_eq!(other.profiles, baseline.profiles);
        assert_eq!(other.loads, baseline.loads);
    }

    // The coupling is real: homes landed in every cell, and both
    // directions accumulated onloaded bytes.
    let map = CellMap::city(config.cells);
    let mut expected = vec![0u64; config.cells as usize];
    for home in 0..600u32 {
        expected[map.cell_of(home) as usize] += 1;
    }
    for (cell, want) in expected.iter().enumerate() {
        let homes = baseline.digest.cells.homes[cell];
        assert!(homes > 0, "cell {cell} got no homes");
        assert_eq!(homes, *want, "cell {cell} home count off");
    }
    // Weighted assignment: the dense-residential cells carry several
    // times the homes of the suburbs.
    assert!(expected[0] > 3 * expected[3], "{expected:?}");
    let (dl, ul) = baseline.digest.cells.total_bytes();
    assert!(dl > 0.0 && ul > 0.0);
}

#[test]
fn fixed_point_converges_identically_for_any_worker_count() {
    let config = CellFleetConfig::default();
    let serial = coupled(250, 1, 64, &config);
    let parallel = coupled(250, 4, 23, &config);

    // The whole trajectory is worker-invariant, not just the end
    // state: same pass count, same verdict, same settled shares.
    assert_eq!(serial.passes, parallel.passes);
    assert_eq!(serial.converged, parallel.converged);
    assert_eq!(serial.profiles, parallel.profiles);
    assert_eq!(serial.loads, parallel.loads);
    assert_eq!(serial.digest, parallel.digest);
    assert!(serial.converged, "default config should settle within {} passes", config.max_passes);
    assert!(serial.passes >= 2, "the load must actually move the shares once");

    // Fig 11 character: 3GOL load on the cells is wired-shaped —
    // the evening block carries more onloaded traffic than the
    // small hours.
    let block = |lo: usize, hi: usize| -> f64 {
        serial.loads.iter().map(|l| (lo..hi).map(|h| l.dl_bps[h] + l.ul_bps[h]).sum::<f64>()).sum()
    };
    let evening = block(18, 24);
    let night = block(2, 8);
    assert!(evening > 2.0 * night, "evening {evening:.0} b/s vs night {night:.0} b/s");

    // And the shares the fleet settled on respect the floors and the
    // cells' leftover capacity.
    for profile in &serial.profiles {
        let site = serial.map.site(profile.cell);
        for h in 0..24 {
            assert!(profile.down_bps[h] >= threegol_radio::consts::UMTS_DEDICATED_DL_BPS);
            assert!(profile.down_bps[h] <= site.dl_capacity_bps);
            assert!(profile.up_bps[h] >= threegol_radio::consts::UMTS_DEDICATED_UL_BPS);
            assert!(profile.up_bps[h] <= site.ul_capacity_bps);
        }
    }
}
