//! A subscriber's day under both 3GOL deployment modes (§2.4 vs §6):
//! network-integrated (permit-gated by cell load, unmetered) versus
//! multi-provider (gated by each phone's cap quota).
//!
//! ```text
//! cargo run --release --example network_integrated
//! ```

use threegol::core::service::{DayOfVideos, ServicePolicy};
use threegol::hls::VideoQuality;
use threegol::radio::{LocationProfile, Provisioning};

fn main() {
    let hours = [4.0, 9.0, 12.0, 15.0, 19.0, 21.0];
    let quality = VideoQuality::paper_ladder().remove(3); // Q4
    let mut location = LocationProfile::reference_2mbps();
    location.provisioning = Provisioning::Congested;

    for (label, policy) in [
        ("network-integrated (permits, congested cell)", ServicePolicy::network_integrated()),
        ("multi-provider (20 MB/phone/day caps)", ServicePolicy::multi_provider()),
    ] {
        println!("{label}:");
        println!("{:>7} {:>8} {:>10} {:>12}", "hour", "phones", "speedup", "onloaded MB");
        let day = DayOfVideos {
            location: location.clone(),
            quality: quality.clone(),
            n_phones: 2,
            policy,
            seed: 0xDA7,
        };
        for v in day.run(&hours) {
            let onloaded: f64 = v.outcome.bytes_per_path.iter().skip(1).sum();
            println!(
                "{:>5.0}h {:>8} {:>9.2}× {:>12.1}",
                v.hour,
                v.phones_used,
                v.speedup(),
                onloaded / 1e6
            );
        }
        println!();
    }
    println!("Permits track the diurnal cell load (denied at the evening peak);");
    println!("caps deplete with use (boost fades once the day's quota is spent).");
}
