//! A stock HLS "player" against the 3GOL client proxy.
//!
//! The paper's client component is a local HTTP proxy the video player
//! points at; the player stays completely unaware of 3GOL. This
//! example runs the full chain — origin → {ADSL gateway, device proxy}
//! → HLS-aware proxy → sequential player — on one home's subnet of the
//! virtual network, and compares startup with and without the 3GOL
//! paths.
//!
//! ```text
//! cargo run --release --example player_proxy
//! ```

use std::sync::Arc;
use tokio::time::Instant;

use threegol::hls::VideoQuality;
use threegol::http::codec::HttpStream;
use threegol::http::Request;
use threegol::proxy::{
    DeviceProxy, HlsProxy, HomeNet, OriginServer, PathTarget, RateLimit, ThreegolClient,
};
use tokio::net::TcpStream;

/// A minimal sequential HLS player: fetch playlist, then segments in
/// order; report the time to buffer the first `prebuffer` segments.
async fn play(proxy_addr: std::net::SocketAddr, playlist: &str, prebuffer: usize) -> (f64, usize) {
    let t0 = Instant::now();
    let stream = TcpStream::connect(proxy_addr).await.unwrap();
    let mut http = HttpStream::new(stream);
    http.write_request(&Request::get(playlist)).await.unwrap();
    let resp = http.read_response().await.unwrap();
    let text = std::str::from_utf8(&resp.body).unwrap();
    let media = threegol::hls::MediaPlaylist::parse(text).unwrap();
    let base = playlist.rsplit_once('/').map(|(d, _)| d).unwrap_or("");
    let mut startup = 0.0;
    for (i, (_, uri)) in media.entries.iter().enumerate() {
        http.write_request(&Request::get(format!("{base}/{uri}"))).await.unwrap();
        let seg = http.read_response().await.unwrap();
        assert_eq!(seg.status, 200);
        if i + 1 == prebuffer {
            startup = t0.elapsed().as_secs_f64();
        }
    }
    (startup, media.entries.len())
}

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = HomeNet::new(0);

    // Origin with a 60 s Q2 video in 10 s segments.
    let ladder = vec![VideoQuality::new("Q1", 311e3)];
    let origin = Arc::new(OriginServer::new(&ladder, 60.0, 10.0));
    let (origin_addr, _t) = origin.clone().spawn(&net.origin().to_string()).await?;

    let adsl = PathTarget::Gateway {
        origin: origin_addr,
        down: RateLimit::new(2.0e6),
        up: RateLimit::new(0.512e6),
    };

    // Proxy with ADSL only (a second proxy host next to the home's
    // canonical one at .3).
    let solo = Arc::new(HlsProxy::new(ThreegolClient::new(vec![adsl.clone()])));
    let (solo_addr, _t) = solo.clone().spawn("10.0.0.4:8088").await?;
    let (startup_solo, n) = play(solo_addr, "/q1/index.m3u8", 2).await;
    println!("player via proxy, ADSL only : {n} segments, 2-segment startup {startup_solo:.2} s");

    // Proxy with ADSL + two phones.
    let mut paths = vec![adsl];
    for i in 0..2 {
        let device = Arc::new(DeviceProxy::new(
            format!("phone-{i}"),
            origin_addr,
            RateLimit::new(1.8e6),
            RateLimit::new(1.2e6),
            1e9,
        ));
        let (lan_addr, _t) = device.clone().spawn(&net.device(i).to_string()).await?;
        paths.push(PathTarget::Device { addr: lan_addr });
    }
    let gol = Arc::new(HlsProxy::new(ThreegolClient::new(paths)));
    let (gol_addr, _t) = gol.clone().spawn(&net.client_proxy().to_string()).await?;
    let (startup_gol, _) = play(gol_addr, "/q1/index.m3u8", 2).await;
    println!("player via proxy, 3GOL (2ph): {n} segments, 2-segment startup {startup_gol:.2} s");
    println!(
        "\nstartup speedup ×{:.2} — the player never knew 3GOL existed",
        startup_solo / startup_gol
    );
    Ok(())
}
