//! The live 3GOL prototype end to end on the in-process virtual
//! network (paper §4.1): an origin server, two device proxies with
//! throttled "3G" bearers and quota tracking, UDP discovery, and the
//! HLS-aware multipath client — all inside one home's subnet, under
//! virtual time, with no kernel sockets.
//!
//! ```text
//! cargo run --release --example live_proxy
//! ```

use std::sync::Arc;
use std::time::Duration;

use threegol::hls::VideoQuality;
use threegol::proxy::{
    DeviceProxy, Discovery, HomeNet, OriginServer, PathTarget, RateLimit, ThreegolClient,
};

#[tokio::main]
async fn main() -> Result<(), Box<dyn std::error::Error>> {
    // This demo household owns the 10.0.0.0/24 corner of the virtual
    // network.
    let net = HomeNet::new(0);

    // Origin with a short 60 s video at Q1/Q2 (keeps the demo quick).
    let ladder = vec![VideoQuality::new("Q1", 200e3), VideoQuality::new("Q2", 311e3)];
    let origin = Arc::new(OriginServer::new(&ladder, 60.0, 10.0));
    let (origin_addr, _origin_task) = origin.clone().spawn(&net.origin().to_string()).await?;
    println!("origin listening on {origin_addr}");

    // Two phones with ~1.8 Mbit/s HSPA bearers and 20 MB allowances.
    let discovery = Discovery::bind(&net.discovery().to_string()).await?;
    let disco_addr = discovery.local_addr()?;
    for i in 1..=2 {
        let device = Arc::new(DeviceProxy::new(
            format!("phone-{i}"),
            origin_addr,
            RateLimit::new(1.8e6),
            RateLimit::new(1.2e6),
            20e6,
        ));
        let (lan_addr, _task) = device.clone().spawn(&net.device(i - 1).to_string()).await?;
        device.spawn_announcer(disco_addr, lan_addr, Duration::from_millis(200));
        println!("device phone-{i} proxying on {lan_addr}");
    }
    tokio::time::sleep(Duration::from_millis(500)).await;

    // The client discovers the admissible set Φ on the LAN.
    let phi = discovery.admissible();
    println!(
        "discovered {} devices: {:?}",
        phi.len(),
        phi.iter().map(|a| &a.name).collect::<Vec<_>>()
    );

    // Path 0: the gateway, throttled to a 2 Mbit/s ADSL profile.
    let gateway = PathTarget::Gateway {
        origin: origin_addr,
        down: RateLimit::new(2.0e6),
        up: RateLimit::new(0.512e6),
    };

    // ADSL alone.
    let solo = ThreegolClient::new(vec![gateway.clone()]);
    let t0 = tokio::time::Instant::now();
    let (_pl, bodies, _report) = solo.fetch_hls("/q1/index.m3u8").await?;
    let solo_secs = t0.elapsed().as_secs_f64();
    println!(
        "\nADSL alone : {} segments ({:.1} MB) in {:.1} s",
        bodies.len(),
        bodies.iter().map(|b| b.len()).sum::<usize>() as f64 / 1e6,
        solo_secs
    );

    // 3GOL: gateway + discovered phones.
    let mut paths = vec![gateway];
    for ad in &phi {
        paths.push(PathTarget::Device { addr: ad.proxy_addr });
    }
    let client = ThreegolClient::new(paths);
    let t0 = tokio::time::Instant::now();
    let (_pl, bodies, report) = client.fetch_hls("/q1/index.m3u8").await?;
    let gol_secs = t0.elapsed().as_secs_f64();
    println!(
        "3GOL       : {} segments in {:.1} s (×{:.2} speedup, {} aborts, {:.0} kB waste)",
        bodies.len(),
        gol_secs,
        solo_secs / gol_secs,
        report.aborts,
        report.wasted_bytes / 1e3
    );
    for (i, b) in report.bytes_per_path.iter().enumerate() {
        let name = if i == 0 { "gateway".to_string() } else { phi[i - 1].name.clone() };
        println!("  path {i} ({name}): {:.2} MB", b / 1e6);
    }

    // Uplink: a small photo set through the same paths.
    let photos: Vec<(String, bytes::Bytes)> = (0..8)
        .map(|i| (format!("IMG_{i:04}.jpg"), bytes::Bytes::from(vec![i as u8; 400_000])))
        .collect();
    let t0 = tokio::time::Instant::now();
    let report = client.upload_photos(photos).await?;
    println!(
        "\nupload     : 8 photos (3.2 MB) in {:.1} s across {} paths",
        t0.elapsed().as_secs_f64(),
        report.bytes_per_path.iter().filter(|b| **b > 0.0).count()
    );
    // An aborted duplicate occasionally commits before the abort lands;
    // the paper charges those to wasted bytes, the origin just sees an
    // extra copy.
    let ups = origin.uploads();
    let unique: std::collections::HashSet<String> =
        ups.iter().flat_map(|u| u.filenames.clone()).collect();
    println!(
        "origin received {} unique photos ({} uploads incl. duplicates)",
        unique.len(),
        ups.len()
    );
    Ok(())
}
