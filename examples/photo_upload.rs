//! Multimedia upload over a thin ADSL uplink (the §5.2 uplink
//! evaluation): 30 photos (2.5 MB ± 0.74 MB) uploaded sequentially
//! over ADSL versus 3GOL with one and two phones, at every evaluation
//! location.
//!
//! ```text
//! cargo run --release --example photo_upload
//! ```

use threegol::core::upload::UploadExperiment;
use threegol::radio::LocationProfile;

fn main() {
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10} {:>14}",
        "location", "uplink Mbps", "ADSL s", "1ph s", "2ph s", "speedup 2ph"
    );
    let reps = 6;
    for location in LocationProfile::paper_table4() {
        let adsl = UploadExperiment::paper_default(location.clone(), 0).run_mean(reps).total.mean;
        let one = UploadExperiment::paper_default(location.clone(), 1).run_mean(reps).total.mean;
        let two_summary = UploadExperiment::paper_default(location.clone(), 2).run_mean(reps);
        let two = two_summary.total.mean;
        println!(
            "{:<8} {:>12.2} {:>10.0} {:>10.0} {:>10.0} {:>13.1}×",
            location.name,
            location.adsl_up_bps / 1e6,
            adsl,
            one,
            two,
            adsl / two
        );
    }
    println!("\nThe ADSL uplink (≤ 2.77 Mbit/s) is the bottleneck the paper attacks:");
    println!("phones carry most of the photo bytes and cut upload times by 2–6×.");
}
