//! The §3 active-measurement methodology, end to end: the staggered
//! activation ramp ("every 20 minutes we introduce a new device") at a
//! Table 2 location, for both directions.
//!
//! ```text
//! cargo run --release --example measurement_campaign
//! ```

use threegol::measure::{Campaign, Direction};
use threegol::radio::LocationProfile;

fn main() {
    let location = LocationProfile::paper_table2().remove(0);
    println!(
        "campaign at {} (measured by the paper at {:02.0}:00)\n",
        location.name,
        location.measured_hour.unwrap_or(12.0)
    );
    let hour = location.measured_hour.unwrap_or(12.0);
    let campaign = Campaign::new(location, 0xC4);

    for (dir, label) in [(Direction::Down, "downlink"), (Direction::Up, "uplink")] {
        println!("{label} ramp (2 MB probes, +1 device / 20 min):");
        println!("{:>8} {:>12} {:>16}", "devices", "aggregate", "per-device mean");
        for step in campaign.activation_ramp(10, hour, dir) {
            let mean = step.aggregate_bps / step.n_devices as f64;
            println!(
                "{:>8} {:>9.2} Mb/s {:>13.2} Mb/s",
                step.n_devices,
                step.aggregate_bps / 1e6,
                mean / 1e6
            );
        }
        println!();
    }
    println!("Downlink keeps scaling with devices (multi-cell load balancing);");
    println!("uplink plateaus near the 5.76 Mbit/s HSUPA ceiling — the paper's Fig 3.");
}
