//! Quickstart: power-boost one video download with 3GOL.
//!
//! Builds a simulated household on a 2 Mbit/s ADSL line, attaches two
//! phones, downloads the paper's 200 s HLS test video at Q3 with and
//! without 3GOL, and prints the speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use threegol::core::metrics::{reduction_percent, speedup};
use threegol::core::vod::VodExperiment;
use threegol::hls::VideoQuality;
use threegol::radio::LocationProfile;

fn main() {
    let quality = VideoQuality::paper_ladder().remove(2); // Q3, 484 kbit/s
    let location = LocationProfile::reference_2mbps();
    println!("location: {} ({} Mbit/s down)", location.name, location.adsl_down_bps / 1e6);
    println!("video: 200 s HLS at {} ({} kbit/s)\n", quality.label, quality.bitrate_bps / 1e3);

    let experiment = VodExperiment::paper_default(location, quality, 2);
    let reps = 10;

    let adsl = experiment.adsl_only().run_mean(reps);
    println!(
        "ADSL alone : pre-buffer {:6.1} s   full download {:6.1} s",
        adsl.prebuffer.mean, adsl.download.mean
    );

    let gol = experiment.run_mean(reps);
    println!(
        "3GOL (2ph) : pre-buffer {:6.1} s   full download {:6.1} s",
        gol.prebuffer.mean, gol.download.mean
    );

    println!(
        "\nspeedup: ×{:.2} pre-buffer, ×{:.2} download ({:.0}% reduction)",
        speedup(adsl.prebuffer.mean, gol.prebuffer.mean),
        speedup(adsl.download.mean, gol.download.mean),
        reduction_percent(adsl.download.mean, gol.download.mean),
    );
    println!(
        "onloaded to phones: {:.1} MB; duplicate waste: {:.2} MB",
        gol.mean_onloaded_bytes / 1e6,
        gol.wasted.mean / 1e6,
    );
}
