//! Video-on-demand power-boosting across the paper's quality ladder
//! and pre-buffer amounts (the §5.2 downlink evaluation, condensed).
//!
//! For each quality Q1–Q4 and pre-buffer amount (20 %…100 %), prints
//! the pre-buffering time with ADSL alone and with 3GOL (1 and 2
//! phones), at the slowest evaluation location (loc4).
//!
//! ```text
//! cargo run --release --example vod_powerboost
//! ```

use threegol::core::vod::VodExperiment;
use threegol::hls::VideoQuality;
use threegol::radio::LocationProfile;

fn main() {
    let location = LocationProfile::paper_table4().remove(3); // loc4, slowest ADSL
    println!(
        "location {} — ADSL {:.2}/{:.2} Mbit/s, signal {} dBm\n",
        location.name,
        location.adsl_down_bps / 1e6,
        location.adsl_up_bps / 1e6,
        location.signal_dbm
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "quality", "prebuffer", "ADSL s", "3GOL 1ph s", "3GOL 2ph s", "gain s"
    );
    let reps = 8;
    for quality in VideoQuality::paper_ladder() {
        for pb in [0.2, 0.6, 1.0] {
            let mut e = VodExperiment::paper_default(location.clone(), quality.clone(), 0);
            e.prebuffer_fraction = pb;
            let adsl = e.run_mean(reps).prebuffer.mean;
            e.n_phones = 1;
            let one = e.run_mean(reps).prebuffer.mean;
            e.n_phones = 2;
            let two = e.run_mean(reps).prebuffer.mean;
            println!(
                "{:<8} {:>9.0}% {:>12.1} {:>12.1} {:>12.1} {:>8.1}",
                quality.label,
                pb * 100.0,
                adsl,
                one,
                two,
                adsl - two
            );
        }
    }
    println!("\n(gain = seconds of startup delay removed by 3GOL with two phones)");
}
