//! Multi-provider 3GOL under volume caps (paper §6).
//!
//! Generates the synthetic MNO billing trace, runs the allowance
//! estimator `3GOLa(t) = F̄u(t) − α·σ̄u(t)` for a few subscribers,
//! then simulates a day of budgeted video boosting over the DSLAM
//! trace and reports the user benefit and cellular load.
//!
//! ```text
//! cargo run --release --example capped_onloading
//! ```

use threegol::caps::{AdmissibleSet, AllowanceEstimator, QuotaTracker};
use threegol::simnet::stats::Ecdf;
use threegol::traces::analysis::{budgeted_speedup_per_user, cell_load, BudgetModel};
use threegol::traces::dslam::{DslamTrace, DslamTraceConfig};
use threegol::traces::mno::{MnoConfig, MnoTrace};

fn main() {
    // 1. How much spare volume do subscribers have?
    let mno = MnoTrace::generate(MnoConfig { n_users: 10_000, ..MnoConfig::default() });
    let ecdf = mno.used_fraction_ecdf();
    println!("MNO trace: {} subscribers", mno.users.len());
    println!(
        "  {:.0}% use <10% of their cap, {:.0}% use <50% (paper: 40%, 75%)",
        ecdf.eval(0.10) * 100.0,
        ecdf.eval(0.50) * 100.0
    );
    println!("  mean free volume: {:.0} MB/month\n", mno.mean_free_bytes() / 1e6);

    // 2. Per-device allowances via the paper's estimator (τ=5, α=4).
    let est = AllowanceEstimator::paper();
    println!("allowances for three sample subscribers (τ=5, α=4):");
    let mut trackers = Vec::new();
    for user in mno.users.iter().take(3) {
        let history = user.monthly_free_bytes();
        let monthly = est.monthly_allowance(&history[..history.len() - 1]);
        println!(
            "  user {:>4}: cap {:>5.1} GB, allowance {:>6.1} MB/month ({:>4.1} MB/day)",
            user.user_id,
            user.cap_bytes / 1e9,
            monthly / 1e6,
            monthly / 30.0 / 1e6
        );
        trackers.push((format!("phone-{}", user.user_id), QuotaTracker::new(monthly / 30.0)));
    }

    // 3. The admissible set Φ: devices advertise while A(t) > 0.
    let mut phi = AdmissibleSet::new();
    phi.refresh(trackers.iter().map(|(n, t)| (n.as_str(), t)));
    println!(
        "\nadmissible set Φ: {} devices, {:.1} MB advertised\n",
        phi.len(),
        phi.total_available_bytes() / 1e6
    );

    // 4. A day of budgeted boosting over the DSLAM trace.
    let dslam =
        DslamTrace::generate(DslamTraceConfig { n_users: 6_000, ..DslamTraceConfig::default() });
    let model = BudgetModel::paper();
    let ratios = budgeted_speedup_per_user(&dslam, &model);
    let speedups = Ecdf::new(ratios);
    println!("budgeted boosting (40 MB/day/household, 3 Mbit/s DSL):");
    println!(
        "  {:.0}% of users see ≥20% faster videos; {:.0}% see ≥2× (paper: 50%, 5%)",
        speedups.exceed(1.2) * 100.0,
        speedups.exceed(2.0) * 100.0
    );

    let load = cell_load(&dslam, &model, 2.0 * 40e6);
    let peak_capped = load.capped_bps.iter().cloned().fold(0.0, f64::max);
    let peak_uncapped = load.uncapped_bps.iter().cloned().fold(0.0, f64::max);
    println!(
        "  cellular load peak: {:.1} Mbit/s capped vs {:.1} Mbit/s uncapped (backhaul {:.0})",
        peak_capped / 1e6,
        peak_uncapped / 1e6,
        load.backhaul_bps / 1e6
    );
    println!(
        "  mean onloaded: {:.1} MB/user/day (paper: 29.78 MB)",
        load.mean_onloaded_per_user_bytes / 1e6
    );
}
