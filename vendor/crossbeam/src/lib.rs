//! Offline vendored `crossbeam` subset.
//!
//! Implements the `crossbeam::deque` work-stealing API surface the
//! workspace uses (`Injector`, `Worker`, `Stealer`, `Steal`) on top of
//! `std::sync` primitives. The real crate's deques are lock-free
//! (Chase–Lev); these are mutex-backed, which is semantically
//! equivalent and plenty fast for the coarse-grained replication units
//! the bench pool schedules (milliseconds of simulation per unit, so
//! queue operations are nowhere near the critical path).

pub mod deque;
