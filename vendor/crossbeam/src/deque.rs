//! Work-stealing deques: the `crossbeam-deque` API on std mutexes.
//!
//! Three roles, as in the real crate:
//!
//! * [`Injector`] — a shared FIFO queue every thread can push into and
//!   steal from (the pool's global submission queue);
//! * [`Worker`] — a thread-local deque owned by one worker thread,
//!   pushed/popped from its own end;
//! * [`Stealer`] — a handle other threads use to steal from the
//!   opposite end of a `Worker`'s deque.
//!
//! Steal operations return [`Steal`], whose `Retry` variant exists for
//! API fidelity with the lock-free original; the mutex-backed
//! implementation never produces it.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and should be retried (never produced
    /// by this mutex-backed implementation; kept for API fidelity).
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// True if the steal found the queue empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// A global FIFO injector queue.
#[derive(Debug)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Injector<T> {
        Injector { queue: Mutex::new(VecDeque::new()) }
    }

    /// Push a task onto the tail of the queue.
    pub fn push(&self, task: T) {
        self.queue.lock().expect("injector lock").push_back(task);
    }

    /// Steal one task from the head of the queue.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("injector lock").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal a batch of tasks, move them into `dest`, and pop one.
    ///
    /// Takes roughly half the injector's backlog (at least one, at most
    /// [`MAX_BATCH`]) so workers amortize contention on the shared
    /// queue, exactly like the real crate's batched steals.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut queue = self.queue.lock().expect("injector lock");
        let Some(first) = queue.pop_front() else {
            return Steal::Empty;
        };
        let extra = (queue.len() / 2).min(MAX_BATCH - 1);
        if extra > 0 {
            let mut local = dest.queue.lock().expect("worker lock");
            for _ in 0..extra {
                let Some(t) = queue.pop_front() else { break };
                local.push_back(t);
            }
        }
        Steal::Success(first)
    }

    /// True if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("injector lock").is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.queue.lock().expect("injector lock").len()
    }
}

/// Upper bound on tasks moved per batched steal.
pub const MAX_BATCH: usize = 32;

/// A deque owned by a single worker thread.
#[derive(Debug)]
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Create an empty FIFO worker deque.
    pub fn new_fifo() -> Worker<T> {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Push a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.queue.lock().expect("worker lock").push_back(task);
    }

    /// Pop a task from the owner's end (FIFO order).
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().expect("worker lock").pop_front()
    }

    /// True if the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("worker lock").is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.queue.lock().expect("worker lock").len()
    }

    /// A stealer handle onto this deque for other threads.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

/// A handle for stealing from another thread's [`Worker`] deque.
#[derive(Debug)]
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

impl<T> Stealer<T> {
    /// Steal one task from the end opposite the owner.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("worker lock").pop_back() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// True if the deque is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("worker lock").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success(1));
        assert_eq!(inj.steal(), Steal::Success(2));
        assert_eq!(inj.steal(), Steal::Empty);
        assert!(inj.is_empty());
    }

    #[test]
    fn batch_steal_moves_half_the_backlog() {
        let inj = Injector::new();
        for i in 0..9 {
            inj.push(i);
        }
        let local = Worker::new_fifo();
        // Pops 0, moves half of the remaining 8 into the local deque.
        assert_eq!(inj.steal_batch_and_pop(&local), Steal::Success(0));
        assert_eq!(local.len(), 4);
        assert_eq!(inj.len(), 4);
        assert_eq!(local.pop(), Some(1));
    }

    #[test]
    fn stealer_takes_opposite_end() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(3));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn cross_thread_stealing_drains_everything() {
        let inj = std::sync::Arc::new(Injector::new());
        let n = 1000;
        for i in 0..n {
            inj.push(i);
        }
        let total = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let inj = std::sync::Arc::clone(&inj);
                let total = std::sync::Arc::clone(&total);
                scope.spawn(move || {
                    let local = Worker::new_fifo();
                    loop {
                        let task =
                            local.pop().or_else(|| inj.steal_batch_and_pop(&local).success());
                        match task {
                            Some(_) => {
                                total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
            }
        });
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), n);
    }
}
