//! Offline vendored `serde` facade.
//!
//! The build container has no crates.io access. The workspace only uses
//! serde as a *marker* — types derive `Serialize`/`Deserialize` so they
//! can be exported once a real serializer is available, but no code in
//! the default build actually serializes through serde (JSON artifacts
//! are written with explicit formatting code). This facade therefore
//! provides blanket-implemented marker traits and no-op derive macros,
//! keeping every `#[derive(serde::Serialize, serde::Deserialize)]` and
//! `T: Serialize` bound in the workspace compiling unchanged.
//!
//! Swapping the real serde back in is a one-line change in the root
//! `Cargo.toml` once the build environment can reach a registry.

/// Marker for serializable types (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types (blanket-implemented).
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// `serde::de` module subset.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// `serde::ser` module subset.
pub mod ser {
    pub use super::Serialize;
}
