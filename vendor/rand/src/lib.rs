//! Offline vendored mini-`rand`.
//!
//! The build container for this repository has no crates.io access, so
//! the workspace vendors the small slice of the `rand` 0.9 API it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngCore::next_u64`], and the [`Rng`] extension methods
//! `random::<f64>()` / `random_range(0..n)`.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a
//! different stream than upstream's ChaCha12, but with the same
//! contract the workspace relies on: deterministic, seedable, with
//! high-quality 64-bit output. All simulation code reaches it through
//! `threegol_simnet::SimRng`, which treats the generator as opaque.

use core::ops::Range;

/// Core 32/64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per draw, far below anything the simulations resolve.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

/// Convenience extension methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli trial.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = StdRng::seed_from_u64(5);
        let mean: f64 = (0..50_000).map(|_| r.random::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
