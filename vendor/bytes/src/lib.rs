//! Offline vendored mini-`bytes`.
//!
//! `Vec<u8>`-backed stand-ins for `Bytes`/`BytesMut`. No zero-copy
//! reference counting — `clone` copies — but the API contract (cheap
//! conceptual sharing of immutable byte buffers) is preserved for the
//! workspace's HTTP prototype crates.

use std::ops::Deref;

/// Minimal stand-in for the real crate's `BufMut` trait: just the
/// slice-append method the workspace uses.
pub trait BufMut {
    /// Append `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer (Vec-backed stand-in for `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Vec::new() }
    }

    /// Copy from a slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec() }
    }

    /// Create from a static slice (copies; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: data.to_vec() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Split off the bytes at `at`, leaving `[0, at)` in `self`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        Bytes { data: self.data.split_off(at) }
    }

    /// Sub-slice as a new buffer; accepts any range kind
    /// (`a..b`, `a..=b`, `..b`, `a..`, `..`) like the real crate.
    pub fn slice<R: std::ops::RangeBounds<usize>>(&self, range: R) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes { data: self.data[start..end].to_vec() }
    }

    /// Extract the underlying vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes { data: s.into_bytes() }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

/// Growable byte buffer (Vec-backed stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Remove and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        BytesMut { data: std::mem::replace(&mut self.data, rest) }
    }

    /// Drop the first `cnt` bytes.
    pub fn advance(&mut self, cnt: usize) {
        self.data.drain(..cnt);
    }

    /// Clear contents.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Take the entire contents, leaving `self` empty (the real
    /// crate's `split`, i.e. `split_to(len)`).
    pub fn split(&mut self) -> BytesMut {
        BytesMut { data: std::mem::take(&mut self.data) }
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let mut b = Bytes::from("hello world");
        let tail = b.split_off(5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(&tail[..], b" world");
        assert_eq!(b.slice(1..3).as_ref(), b"el");
    }

    #[test]
    fn bytes_mut_split() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abcdef");
        let head = m.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&m[..], b"cdef");
        m.advance(1);
        assert_eq!(m.freeze().as_ref(), b"def");
    }
}
