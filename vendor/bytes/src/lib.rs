//! Offline vendored mini-`bytes`.
//!
//! Arc-backed `Bytes` with zero-copy `clone`/`slice`/`split_off`, and a
//! head-offset `BytesMut` whose `advance` is O(1) and whose
//! `freeze`/`freeze_to` hand the storage to a `Bytes` view without
//! copying the payload. This is what lets the proxy relay path move
//! segment bodies around by reference instead of memcpy.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Minimal stand-in for the real crate's `BufMut` trait: just the
/// slice-append method the workspace uses.
pub trait BufMut {
    /// Append `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer: a `[start, end)` view into shared storage.
/// `clone`, `slice`, and `split_off` are O(1) and never copy payload.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

fn shared_empty() -> Arc<Vec<u8>> {
    use std::sync::OnceLock;
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

impl Bytes {
    /// Empty buffer (no allocation; all empties share one storage).
    pub fn new() -> Bytes {
        Bytes { data: shared_empty(), start: 0, end: 0 }
    }

    fn from_vec(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }

    /// A view of `[start, end)` within already-shared storage.
    pub(crate) fn view(data: Arc<Vec<u8>>, start: usize, end: usize) -> Bytes {
        debug_assert!(start <= end && end <= data.len());
        Bytes { data, start, end }
    }

    /// Copy from a slice.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    /// Create from a static slice (copies; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off the bytes at `at`, leaving `[0, at)` in `self`.
    /// O(1): both halves keep referencing the same storage.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes { data: self.data.clone(), start: self.start + at, end: self.end };
        self.end = self.start + at;
        tail
    }

    /// Sub-slice as a new buffer; accepts any range kind
    /// (`a..b`, `a..=b`, `..b`, `a..`, `..`) like the real crate.
    /// O(1): the result shares this buffer's storage.
    pub fn slice<R: std::ops::RangeBounds<usize>>(&self, range: R) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Bytes { data: self.data.clone(), start: self.start + start, end: self.start + end }
    }

    /// Copy out the contents as a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bytes").field("data", &self.as_ref()).finish()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes::from_vec(data)
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from_vec(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

/// Growable byte buffer whose visible contents are `data[head..]`.
/// Consuming from the front (`advance`) just bumps `head`; freezing
/// hands the storage to a `Bytes` view without copying.
#[derive(Default)]
pub struct BytesMut {
    data: Vec<u8>,
    head: usize,
    /// Bytes of the current allocation known to be initialized
    /// (`data.len() <= init <= data.capacity()`). Lets
    /// [`resize_for_read`](Self::resize_for_read) re-expose previously
    /// zeroed spare capacity without re-zeroing it on every read.
    init: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new(), head: 0, init: 0 }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap), head: 0, init: 0 }
    }

    /// Refresh `init` after an operation that may have grown (and so
    /// possibly reallocated) the storage. A reallocation leaves the
    /// tail beyond `data.len()` uninitialized again.
    fn note_growth(&mut self, cap_before: usize) {
        if self.data.capacity() != cap_before {
            self.init = self.data.len();
        } else {
            self.init = self.init.max(self.data.len());
        }
    }

    /// Reclaim the dead prefix when the buffer has been fully consumed.
    fn compact_if_empty(&mut self) {
        if self.head == self.data.len() {
            self.data.clear();
            self.head = 0;
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact_if_empty();
        let cap = self.data.capacity();
        self.data.extend_from_slice(src);
        self.note_growth(cap);
    }

    /// Length in bytes (of the visible contents).
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.head == self.data.len()
    }

    /// Spare capacity available without reallocating.
    pub fn spare_capacity(&self) -> usize {
        self.data.capacity() - self.data.len()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        if self.is_empty() && self.head > 0 {
            self.compact_if_empty();
        }
        let cap = self.data.capacity();
        self.data.reserve(additional);
        self.note_growth(cap);
    }

    /// Grow or shrink the visible contents to `new_len`, filling new
    /// bytes with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.compact_if_empty();
        let cap = self.data.capacity();
        self.data.resize(self.head + new_len, value);
        self.note_growth(cap);
    }

    /// Grow the visible contents to `new_len` for use as a read
    /// destination. Equivalent to `resize(new_len, 0)` except that
    /// memory this buffer already zeroed (and then [`Self::truncate`]d away)
    /// is re-exposed without being zeroed again — the repeated
    /// grow/read/truncate cycle in `read_buf` pays one memset per
    /// allocation instead of one per read.
    pub fn resize_for_read(&mut self, new_len: usize) {
        self.compact_if_empty();
        let target = self.head + new_len;
        if target <= self.init {
            debug_assert!(target <= self.data.capacity());
            // SAFETY: `init` only ever covers bytes of the current
            // allocation that `Vec` itself wrote (via resize/extend),
            // and is reset whenever the capacity changes, so
            // `data[..target]` is initialized.
            unsafe { self.data.set_len(target) }
        } else {
            let cap = self.data.capacity();
            self.data.resize(target, 0);
            self.note_growth(cap);
        }
    }

    /// Shorten the visible contents to `len` (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.data.truncate(self.head + len);
        }
    }

    /// Remove and return the first `at` bytes. Copies only the
    /// returned prefix; the remainder stays in place (O(1) for it).
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let out = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        self.compact_if_empty();
        let init = out.len();
        BytesMut { data: out, head: 0, init }
    }

    /// Drop the first `cnt` bytes. O(1): just bumps the head offset.
    pub fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
        self.compact_if_empty();
    }

    /// Clear contents (keeps capacity).
    pub fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
    }

    /// Take the entire contents, leaving `self` empty (the real
    /// crate's `split`, i.e. `split_to(len)`).
    pub fn split(&mut self) -> BytesMut {
        let mut v = std::mem::take(&mut self.data);
        self.init = 0;
        if self.head > 0 {
            v.drain(..self.head);
            self.head = 0;
        }
        let init = v.len();
        BytesMut { data: v, head: 0, init }
    }

    /// Freeze into an immutable buffer. Zero-copy: the storage moves
    /// into the `Bytes`, with the view skipping any consumed prefix.
    pub fn freeze(self) -> Bytes {
        let end = self.data.len();
        if self.head == end {
            return Bytes::new();
        }
        Bytes::view(Arc::new(self.data), self.head, end)
    }

    /// Freeze the first `at` visible bytes into a `Bytes` without
    /// copying them, leaving any remainder (e.g. the head of a
    /// pipelined next message) in `self`. The whole storage moves into
    /// the returned `Bytes`; only the (typically tiny) remainder is
    /// copied into fresh storage.
    pub fn freeze_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "freeze_to out of bounds");
        if at == 0 {
            return Bytes::new();
        }
        let v = std::mem::take(&mut self.data);
        let start = self.head;
        self.head = 0;
        self.data = v[start + at..].to_vec();
        self.init = self.data.len();
        Bytes::view(Arc::new(v), start, start + at)
    }
}

impl Clone for BytesMut {
    fn clone(&self) -> BytesMut {
        let data = self.as_ref().to_vec();
        let init = data.len();
        BytesMut { data, head: 0, init }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BytesMut").field("data", &self.as_ref()).finish()
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &BytesMut) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for BytesMut {}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        self
    }
}

impl std::fmt::Write for BytesMut {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.extend_from_slice(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let mut b = Bytes::from("hello world");
        let tail = b.split_off(5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(&tail[..], b" world");
        assert_eq!(b.slice(1..3).as_ref(), b"el");
    }

    #[test]
    fn bytes_mut_split() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abcdef");
        let head = m.split_to(2);
        assert_eq!(&head[..], b"ab");
        assert_eq!(&m[..], b"cdef");
        m.advance(1);
        assert_eq!(m.freeze().as_ref(), b"def");
    }

    #[test]
    fn clone_is_zero_copy() {
        let b = Bytes::from(vec![7u8; 1024]);
        let c = b.clone();
        // Same storage: the payload pointer is shared, not copied.
        assert!(std::ptr::eq(b.as_ref().as_ptr(), c.as_ref().as_ptr()));
        assert_eq!(b, c);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from("0123456789");
        let base = b.as_ref().as_ptr();
        let s = b.slice(2..6);
        assert_eq!(s.as_ref(), b"2345");
        assert_eq!(s.as_ref().as_ptr(), unsafe { base.add(2) });
        let tail = b.split_off(4);
        assert_eq!(b.as_ref(), b"0123");
        assert_eq!(tail.as_ref(), b"456789");
        assert_eq!(tail.as_ref().as_ptr(), unsafe { base.add(4) });
    }

    #[test]
    fn advance_is_offset_only() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"abcdefgh");
        let base = m.as_ref().as_ptr();
        m.advance(3);
        assert_eq!(m.as_ref(), b"defgh");
        assert_eq!(m.as_ref().as_ptr(), unsafe { base.add(3) });
        // Full consumption resets the buffer for capacity reuse.
        m.advance(5);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn freeze_after_advance_skips_prefix() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"xxhello");
        m.advance(2);
        assert_eq!(m.freeze().as_ref(), b"hello");
    }

    #[test]
    fn freeze_to_keeps_remnant() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"bodyNEXT");
        let body = m.freeze_to(4);
        assert_eq!(body.as_ref(), b"body");
        assert_eq!(m.as_ref(), b"NEXT");
        // And the frozen part did not copy the payload: its view points
        // into the original storage.
        let whole = m.freeze_to(4);
        assert_eq!(whole.as_ref(), b"NEXT");
        assert!(m.is_empty());
    }

    #[test]
    fn resize_truncate_window() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(b"abc");
        m.advance(1);
        m.resize(10, 0);
        assert_eq!(m.len(), 10);
        assert_eq!(&m[..2], b"bc");
        m.as_mut()[2..5].copy_from_slice(b"def");
        m.truncate(5);
        assert_eq!(m.as_ref(), b"bcdef");
    }

    #[test]
    fn resize_for_read_reexposes_initialized_tail() {
        let mut m = BytesMut::with_capacity(64);
        m.resize_for_read(64);
        assert_eq!(m.len(), 64);
        assert!(m.iter().all(|&b| b == 0));
        m.as_mut()[..64].copy_from_slice(&[9u8; 64]);
        m.truncate(0);
        // Re-exposing without reallocation keeps the old contents
        // (caller overwrites them, as a read does).
        m.resize_for_read(64);
        assert_eq!(m.len(), 64);
        assert!(m.iter().all(|&b| b == 9));
        // Growing past the allocation falls back to a zeroing resize.
        m.resize_for_read(200);
        assert_eq!(m.len(), 200);
        assert!(m[64..].iter().all(|&b| b == 0));
    }

    #[test]
    fn fmt_write_appends() {
        use std::fmt::Write;
        let mut m = BytesMut::new();
        let (path, version) = ("/x", "1.1");
        write!(m, "GET {path} HTTP/{version}").unwrap();
        assert_eq!(m.as_ref(), b"GET /x HTTP/1.1");
    }
}
