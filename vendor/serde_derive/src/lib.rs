//! No-op derive macros backing the offline `serde` facade.
//!
//! The facade's `Serialize`/`Deserialize` traits are blanket-implemented
//! marker traits, so the derives have nothing to emit; they exist so
//! `#[derive(serde::Serialize, serde::Deserialize)]` parses. `#[serde(...)]`
//! helper attributes are accepted and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
