//! Offline vendored `serde_json` placeholder.
//!
//! The default build writes its JSON artifacts (e.g. `BENCH_simnet.json`)
//! with explicit formatting code and parses none, so this crate only has
//! to exist for dependency resolution. The functions are honest stubs:
//! they return errors rather than pretending to serialize, so any future
//! code path that reaches them fails loudly instead of silently
//! producing garbage.

use std::fmt;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offline serde_json stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Stub of `serde_json::to_vec` — always errors.
pub fn to_vec<T: serde::Serialize + ?Sized>(_value: &T) -> Result<Vec<u8>> {
    Err(Error("to_vec is not implemented offline"))
}

/// Stub of `serde_json::to_string` — always errors.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error("to_string is not implemented offline"))
}

/// Stub of `serde_json::from_slice` — always errors.
pub fn from_slice<T: serde::de::DeserializeOwned>(_bytes: &[u8]) -> Result<T> {
    Err(Error("from_slice is not implemented offline"))
}

/// Stub of `serde_json::from_str` — always errors.
pub fn from_str<T: serde::de::DeserializeOwned>(_s: &str) -> Result<T> {
    Err(Error("from_str is not implemented offline"))
}
