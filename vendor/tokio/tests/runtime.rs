//! Behavioral tests for the vendored runtime itself: virtual-time
//! timers, duplex backpressure, channel close semantics, and loopback
//! TCP through the retry reactor.

use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;
use tokio::time::Instant;

// ---------------------------------------------------------------------------
// Virtual time
// ---------------------------------------------------------------------------

#[tokio::test]
async fn timers_fire_in_deadline_order() {
    let (tx, mut rx) = mpsc::unbounded_channel::<u32>();
    for (label, ms) in [(3u32, 300u64), (1, 100), (2, 200)] {
        let tx = tx.clone();
        tokio::spawn(async move {
            tokio::time::sleep(Duration::from_millis(ms)).await;
            tx.send(label).unwrap();
        });
    }
    drop(tx);
    let mut order = Vec::new();
    while let Some(label) = rx.recv().await {
        order.push(label);
    }
    assert_eq!(order, vec![1, 2, 3]);
}

#[tokio::test]
async fn sleeps_run_on_the_virtual_clock() {
    // An hour of virtual sleeping must complete (near) instantly in
    // real time, yet be fully visible to tokio::time::Instant.
    let real = std::time::Instant::now();
    let virt = Instant::now();
    tokio::time::sleep(Duration::from_secs(3600)).await;
    assert!(virt.elapsed() >= Duration::from_secs(3600));
    assert!(real.elapsed() < Duration::from_secs(10));
}

#[tokio::test]
async fn advance_wakes_due_sleeps() {
    let handle = tokio::spawn(async {
        tokio::time::sleep(Duration::from_millis(250)).await;
        Instant::now()
    });
    let before = Instant::now();
    tokio::time::advance(Duration::from_millis(250)).await;
    let woke_at = handle.await.unwrap();
    assert!(woke_at >= before + Duration::from_millis(250));
}

#[tokio::test]
async fn timeout_expires_before_slow_future() {
    let slow = tokio::time::sleep(Duration::from_secs(5));
    let res = tokio::time::timeout(Duration::from_millis(50), slow).await;
    assert!(res.is_err(), "timeout should win against a longer sleep");

    let fast = async { 42 };
    let res = tokio::time::timeout(Duration::from_millis(50), fast).await;
    assert_eq!(res.unwrap(), 42);
}

// ---------------------------------------------------------------------------
// Duplex backpressure
// ---------------------------------------------------------------------------

#[tokio::test]
async fn duplex_applies_backpressure_at_capacity() {
    let (mut tx, mut rx) = tokio::io::duplex(64);
    // 4 KiB through a 64-byte pipe: the writer must repeatedly block
    // until the reader drains; total delivery proves the handoff works.
    let writer = tokio::spawn(async move {
        let data = vec![7u8; 4096];
        tx.write_all(&data).await.unwrap();
    });
    let mut got = Vec::new();
    let mut chunk = [0u8; 64];
    loop {
        let n = rx.read(&mut chunk).await.unwrap();
        if n == 0 {
            break;
        }
        // The pipe can never hold more than its capacity.
        assert!(n <= 64);
        got.extend_from_slice(&chunk[..n]);
    }
    writer.await.unwrap();
    assert_eq!(got, vec![7u8; 4096]);
}

#[tokio::test]
async fn duplex_read_sees_eof_after_writer_drops() {
    let (mut tx, mut rx) = tokio::io::duplex(1024);
    tx.write_all(b"tail").await.unwrap();
    drop(tx);
    let mut buf = Vec::new();
    rx.read_to_end(&mut buf).await.unwrap();
    assert_eq!(buf, b"tail");
}

#[tokio::test]
async fn duplex_write_fails_after_reader_drops() {
    let (mut tx, rx) = tokio::io::duplex(16);
    drop(rx);
    // The 16-byte pipe fills, then the closed read side surfaces as an
    // error instead of blocking forever.
    let err = tx.write_all(&[0u8; 64]).await.unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
}

// ---------------------------------------------------------------------------
// mpsc close semantics
// ---------------------------------------------------------------------------

#[tokio::test]
async fn unbounded_recv_returns_none_after_senders_drop() {
    let (tx, mut rx) = mpsc::unbounded_channel::<u32>();
    let tx2 = tx.clone();
    tx.send(1).unwrap();
    tx2.send(2).unwrap();
    drop(tx);
    drop(tx2);
    // Buffered messages survive the close; then the channel reports it.
    assert_eq!(rx.recv().await, Some(1));
    assert_eq!(rx.recv().await, Some(2));
    assert_eq!(rx.recv().await, None);
}

#[tokio::test]
async fn send_fails_once_receiver_is_gone() {
    let (tx, rx) = mpsc::unbounded_channel::<u32>();
    drop(rx);
    assert!(tx.send(5).is_err());
    assert!(tx.is_closed());
}

#[tokio::test]
async fn bounded_send_waits_for_capacity() {
    let (tx, mut rx) = mpsc::channel::<u32>(2);
    tx.send(1).await.unwrap();
    tx.send(2).await.unwrap();
    // A third send must park until the receiver makes room.
    let sender = tokio::spawn(async move {
        tx.send(3).await.unwrap();
    });
    assert_eq!(rx.recv().await, Some(1));
    sender.await.unwrap();
    assert_eq!(rx.recv().await, Some(2));
    assert_eq!(rx.recv().await, Some(3));
    assert_eq!(rx.recv().await, None);
}

// ---------------------------------------------------------------------------
// Loopback TCP through the retry reactor
// ---------------------------------------------------------------------------

#[tokio::test]
async fn tcp_echo_round_trip() {
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let server = tokio::spawn(async move {
        let (mut sock, _peer) = listener.accept().await.unwrap();
        let mut buf = vec![0u8; 256 * 1024];
        sock.read_exact(&mut buf).await.unwrap();
        sock.write_all(&buf).await.unwrap();
    });

    let mut client = TcpStream::connect(addr).await.unwrap();
    let payload: Vec<u8> = (0..256 * 1024).map(|i| (i % 251) as u8).collect();
    client.write_all(&payload).await.unwrap();
    let mut echoed = vec![0u8; payload.len()];
    client.read_exact(&mut echoed).await.unwrap();
    assert_eq!(echoed, payload);
    server.await.unwrap();
}

#[tokio::test]
async fn non_loopback_addresses_are_rejected() {
    let err = TcpStream::connect("192.0.2.1:80").await.unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    let err = TcpListener::bind("0.0.0.0:0").await.unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

#[tokio::test]
async fn abort_cancels_a_parked_task() {
    let (tx, _rx_keepalive) = mpsc::unbounded_channel::<u32>();
    let handle = tokio::spawn(async move {
        // Parks forever: the keepalive receiver never gets a message
        // and is never dropped before the abort.
        tokio::time::sleep(Duration::from_secs(100_000)).await;
        tx.send(1).unwrap();
    });
    handle.abort();
    let err = handle.await.unwrap_err();
    assert!(err.is_cancelled());
}

#[tokio::test]
async fn join_handle_returns_task_output() {
    let handle = tokio::spawn(async { 2 + 2 });
    assert_eq!(handle.await.unwrap(), 4);
    let handle = tokio::spawn(async { "done".to_string() });
    assert_eq!(handle.await.unwrap(), "done");
    let handle = tokio::spawn(async {});
    tokio::task::yield_now().await;
    assert!(handle.is_finished());
    handle.await.unwrap();
}
