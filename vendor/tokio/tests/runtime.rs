//! Behavioral tests for the vendored runtime itself: virtual-time
//! timers, duplex backpressure, channel close semantics, and the
//! in-process virtual network.

use std::time::Duration;

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream, UdpSocket};
use tokio::sync::mpsc;
use tokio::time::Instant;

// ---------------------------------------------------------------------------
// Virtual time
// ---------------------------------------------------------------------------

#[tokio::test]
async fn timers_fire_in_deadline_order() {
    let (tx, mut rx) = mpsc::unbounded_channel::<u32>();
    for (label, ms) in [(3u32, 300u64), (1, 100), (2, 200)] {
        let tx = tx.clone();
        tokio::spawn(async move {
            tokio::time::sleep(Duration::from_millis(ms)).await;
            tx.send(label).unwrap();
        });
    }
    drop(tx);
    let mut order = Vec::new();
    while let Some(label) = rx.recv().await {
        order.push(label);
    }
    assert_eq!(order, vec![1, 2, 3]);
}

#[tokio::test]
async fn sleeps_run_on_the_virtual_clock() {
    // An hour of virtual sleeping must complete (near) instantly in
    // real time, yet be fully visible to tokio::time::Instant.
    let real = std::time::Instant::now();
    let virt = Instant::now();
    tokio::time::sleep(Duration::from_secs(3600)).await;
    assert!(virt.elapsed() >= Duration::from_secs(3600));
    assert!(real.elapsed() < Duration::from_secs(10));
}

#[tokio::test]
async fn advance_wakes_due_sleeps() {
    let handle = tokio::spawn(async {
        tokio::time::sleep(Duration::from_millis(250)).await;
        Instant::now()
    });
    let before = Instant::now();
    tokio::time::advance(Duration::from_millis(250)).await;
    let woke_at = handle.await.unwrap();
    assert!(woke_at >= before + Duration::from_millis(250));
}

#[tokio::test]
async fn timeout_expires_before_slow_future() {
    let slow = tokio::time::sleep(Duration::from_secs(5));
    let res = tokio::time::timeout(Duration::from_millis(50), slow).await;
    assert!(res.is_err(), "timeout should win against a longer sleep");

    let fast = async { 42 };
    let res = tokio::time::timeout(Duration::from_millis(50), fast).await;
    assert_eq!(res.unwrap(), 42);
}

// ---------------------------------------------------------------------------
// Duplex backpressure
// ---------------------------------------------------------------------------

#[tokio::test]
async fn duplex_applies_backpressure_at_capacity() {
    let (mut tx, mut rx) = tokio::io::duplex(64);
    // 4 KiB through a 64-byte pipe: the writer must repeatedly block
    // until the reader drains; total delivery proves the handoff works.
    let writer = tokio::spawn(async move {
        let data = vec![7u8; 4096];
        tx.write_all(&data).await.unwrap();
    });
    let mut got = Vec::new();
    let mut chunk = [0u8; 64];
    loop {
        let n = rx.read(&mut chunk).await.unwrap();
        if n == 0 {
            break;
        }
        // The pipe can never hold more than its capacity.
        assert!(n <= 64);
        got.extend_from_slice(&chunk[..n]);
    }
    writer.await.unwrap();
    assert_eq!(got, vec![7u8; 4096]);
}

#[tokio::test]
async fn duplex_read_sees_eof_after_writer_drops() {
    let (mut tx, mut rx) = tokio::io::duplex(1024);
    tx.write_all(b"tail").await.unwrap();
    drop(tx);
    let mut buf = Vec::new();
    rx.read_to_end(&mut buf).await.unwrap();
    assert_eq!(buf, b"tail");
}

#[tokio::test]
async fn duplex_write_fails_after_reader_drops() {
    let (mut tx, rx) = tokio::io::duplex(16);
    drop(rx);
    // The 16-byte pipe fills, then the closed read side surfaces as an
    // error instead of blocking forever.
    let err = tx.write_all(&[0u8; 64]).await.unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
}

#[tokio::test]
async fn duplex_gather_write_crosses_slice_boundaries() {
    use std::io::IoSlice;
    // A single vectored write must pull bytes from several slices in
    // one call when the pipe has room for all of them.
    let (mut tx, mut rx) = tokio::io::duplex(1024);
    let head = b"HEAD/".as_slice();
    let body = b"body-bytes".as_slice();
    let tail = b"/TAIL".as_slice();
    let n = tx
        .write_vectored(&[IoSlice::new(head), IoSlice::new(body), IoSlice::new(tail)])
        .await
        .unwrap();
    assert_eq!(n, head.len() + body.len() + tail.len());
    let mut got = vec![0u8; n];
    rx.read_exact(&mut got).await.unwrap();
    assert_eq!(got, b"HEAD/body-bytes/TAIL");
}

#[tokio::test]
async fn duplex_gather_write_respects_backpressure() {
    use std::io::IoSlice;
    // A 64-byte pipe and a 16-byte head + 4 KiB body: each vectored
    // write may only take what the pipe can hold, so the writer loops,
    // advancing through the slice list, while the reader drains.
    let (mut tx, mut rx) = tokio::io::duplex(64);
    let writer = tokio::spawn(async move {
        let head = [1u8; 16];
        let body = [2u8; 4096];
        let mut written = 0usize;
        let total = head.len() + body.len();
        while written < total {
            let (h, b) = if written < head.len() {
                (&head[written..], &body[..])
            } else {
                (&[][..], &body[written - head.len()..])
            };
            let n = tx.write_vectored(&[IoSlice::new(h), IoSlice::new(b)]).await.unwrap();
            assert!(n > 0 && n <= 64, "gather write returned {n}");
            written += n;
        }
        written
    });
    let mut got = Vec::new();
    let mut chunk = [0u8; 48];
    loop {
        let n = rx.read(&mut chunk).await.unwrap();
        if n == 0 {
            break;
        }
        got.extend_from_slice(&chunk[..n]);
    }
    assert_eq!(writer.await.unwrap(), 16 + 4096);
    let mut expect = vec![1u8; 16];
    expect.extend_from_slice(&[2u8; 4096]);
    assert_eq!(got, expect);
}

// ---------------------------------------------------------------------------
// mpsc close semantics
// ---------------------------------------------------------------------------

#[tokio::test]
async fn unbounded_recv_returns_none_after_senders_drop() {
    let (tx, mut rx) = mpsc::unbounded_channel::<u32>();
    let tx2 = tx.clone();
    tx.send(1).unwrap();
    tx2.send(2).unwrap();
    drop(tx);
    drop(tx2);
    // Buffered messages survive the close; then the channel reports it.
    assert_eq!(rx.recv().await, Some(1));
    assert_eq!(rx.recv().await, Some(2));
    assert_eq!(rx.recv().await, None);
}

#[tokio::test]
async fn send_fails_once_receiver_is_gone() {
    let (tx, rx) = mpsc::unbounded_channel::<u32>();
    drop(rx);
    assert!(tx.send(5).is_err());
    assert!(tx.is_closed());
}

#[tokio::test]
async fn bounded_send_waits_for_capacity() {
    let (tx, mut rx) = mpsc::channel::<u32>(2);
    tx.send(1).await.unwrap();
    tx.send(2).await.unwrap();
    // A third send must park until the receiver makes room.
    let sender = tokio::spawn(async move {
        tx.send(3).await.unwrap();
    });
    assert_eq!(rx.recv().await, Some(1));
    sender.await.unwrap();
    assert_eq!(rx.recv().await, Some(2));
    assert_eq!(rx.recv().await, Some(3));
    assert_eq!(rx.recv().await, None);
}

// ---------------------------------------------------------------------------
// Virtual network
// ---------------------------------------------------------------------------

#[tokio::test]
async fn tcp_echo_round_trip() {
    let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
    let addr = listener.local_addr().unwrap();
    let server = tokio::spawn(async move {
        let (mut sock, _peer) = listener.accept().await.unwrap();
        let mut buf = vec![0u8; 256 * 1024];
        sock.read_exact(&mut buf).await.unwrap();
        sock.write_all(&buf).await.unwrap();
    });

    let mut client = TcpStream::connect(addr).await.unwrap();
    let payload: Vec<u8> = (0..256 * 1024).map(|i| (i % 251) as u8).collect();
    client.write_all(&payload).await.unwrap();
    let mut echoed = vec![0u8; payload.len()];
    client.read_exact(&mut echoed).await.unwrap();
    assert_eq!(echoed, payload);
    server.await.unwrap();
}

#[tokio::test]
async fn any_concrete_address_is_bindable_without_privileges() {
    // Port 80 on an arbitrary subnet: impossible for an unprivileged
    // process with kernel sockets, trivial on the virtual net. This is
    // the cheapest proof that no real socket hides underneath.
    let listener = TcpListener::bind("10.42.0.1:80").await.unwrap();
    assert_eq!(listener.local_addr().unwrap().to_string(), "10.42.0.1:80");

    let server = tokio::spawn(async move {
        let (mut sock, peer) = listener.accept().await.unwrap();
        // The client was assigned an ephemeral port on the same host.
        assert_eq!(peer.ip().to_string(), "10.42.0.1");
        assert!(peer.port() >= 49152);
        sock.write_all(b"hello from :80").await.unwrap();
    });
    let mut client = TcpStream::connect("10.42.0.1:80").await.unwrap();
    let mut buf = Vec::new();
    client.read_to_end(&mut buf).await.unwrap();
    assert_eq!(buf, b"hello from :80");
    server.await.unwrap();
}

#[test]
fn same_address_is_independent_across_runtimes() {
    // Two sequential runtimes bind the identical address: virtual
    // registries are per-runtime, so there is no cross-run AddrInUse —
    // which also means a fleet of homes can reuse one subnet plan.
    for round in 0..2 {
        tokio::runtime::block_on(async move {
            let listener = TcpListener::bind("192.168.1.1:8080").await.unwrap();
            let server = tokio::spawn(async move {
                let (mut sock, _) = listener.accept().await.unwrap();
                sock.write_all(&[round]).await.unwrap();
            });
            let mut client = TcpStream::connect("192.168.1.1:8080").await.unwrap();
            let mut byte = [0u8; 1];
            client.read_exact(&mut byte).await.unwrap();
            assert_eq!(byte[0], round);
            server.await.unwrap();
        });
    }
}

#[tokio::test]
async fn double_bind_is_addr_in_use() {
    let _first = TcpListener::bind("10.0.0.7:1000").await.unwrap();
    let err = TcpListener::bind("10.0.0.7:1000").await.unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
}

#[tokio::test]
async fn dropping_a_listener_releases_its_address() {
    let first = TcpListener::bind("10.0.0.8:1000").await.unwrap();
    drop(first);
    TcpListener::bind("10.0.0.8:1000").await.unwrap();
}

#[tokio::test]
async fn connect_to_unbound_address_is_refused() {
    let err = TcpStream::connect("10.9.9.9:4242").await.unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
}

#[tokio::test]
async fn unspecified_addresses_are_rejected() {
    let err = TcpListener::bind("0.0.0.0:0").await.unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}

#[tokio::test]
async fn ephemeral_ports_are_assigned_deterministically() {
    let a = TcpListener::bind("10.1.0.1:0").await.unwrap();
    let b = TcpListener::bind("10.1.0.1:0").await.unwrap();
    // Fresh runtime, fresh cursor: the kernel-style ephemeral range
    // starts at 49152 and increments per IP.
    assert_eq!(a.local_addr().unwrap().port(), 49152);
    assert_eq!(b.local_addr().unwrap().port(), 49153);
    // A different IP has its own cursor.
    let c = UdpSocket::bind("10.1.0.2:0").await.unwrap();
    assert_eq!(c.local_addr().unwrap().port(), 49152);
}

#[tokio::test]
async fn udp_datagrams_route_through_the_registry() {
    let server = UdpSocket::bind("172.16.0.1:5353").await.unwrap();
    let client = UdpSocket::bind("172.16.0.1:0").await.unwrap();
    let client_addr = client.local_addr().unwrap();

    client.send_to(b"ping", "172.16.0.1:5353").await.unwrap();
    let mut buf = [0u8; 16];
    let (n, from) = server.recv_from(&mut buf).await.unwrap();
    assert_eq!(&buf[..n], b"ping");
    assert_eq!(from, client_addr);

    // Sending to an address nobody bound is refused immediately (the
    // deterministic stand-in for loopback ICMP unreachable).
    let err = client.send_to(b"x", "172.16.0.1:9").await.unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
}

#[tokio::test]
async fn net_stats_count_virtual_traffic() {
    let before = tokio::net::stats();
    let listener = TcpListener::bind("10.5.0.1:80").await.unwrap();
    let server = tokio::spawn(async move {
        let (mut sock, _) = listener.accept().await.unwrap();
        let mut sink = Vec::new();
        sock.read_to_end(&mut sink).await.unwrap();
    });
    let mut client = TcpStream::connect("10.5.0.1:80").await.unwrap();
    client.write_all(b"bytes").await.unwrap();
    drop(client);
    server.await.unwrap();

    let udp = UdpSocket::bind("10.5.0.1:5353").await.unwrap();
    let probe = UdpSocket::bind("10.5.0.1:0").await.unwrap();
    probe.send_to(b"ad", "10.5.0.1:5353").await.unwrap();
    let mut buf = [0u8; 4];
    udp.recv_from(&mut buf).await.unwrap();

    let after = tokio::net::stats();
    assert_eq!(after.tcp_binds - before.tcp_binds, 1);
    assert_eq!(after.tcp_connects - before.tcp_connects, 1);
    assert_eq!(after.udp_binds - before.udp_binds, 2);
    assert_eq!(after.datagrams - before.datagrams, 1);
}

#[test]
#[should_panic(expected = "tcp accept on 10.6.0.1:80")]
fn deadlocked_accept_names_the_parked_operation() {
    // Nobody will ever connect: no task is runnable, no timer pending,
    // so the runtime must refuse to wait on real time and instead
    // panic naming the parked operation.
    tokio::runtime::block_on(async {
        let listener = TcpListener::bind("10.6.0.1:80").await.unwrap();
        listener.accept().await.unwrap();
    });
}

#[test]
#[should_panic(expected = "udp recv_from on 10.6.0.2:5353")]
fn deadlocked_udp_recv_names_the_parked_operation() {
    tokio::runtime::block_on(async {
        let sock = UdpSocket::bind("10.6.0.2:5353").await.unwrap();
        let mut buf = [0u8; 4];
        sock.recv_from(&mut buf).await.unwrap();
    });
}

#[test]
#[should_panic(expected = "tcp read from 10.6.0.3:80")]
fn deadlocked_read_names_the_peer_it_waits_on() {
    tokio::runtime::block_on(async {
        let listener = TcpListener::bind("10.6.0.3:80").await.unwrap();
        // The server accepts and then holds the connection open without
        // ever writing, so the client's read can never be satisfied.
        // The panic must name that read and the peer it waits on.
        let _server_side = tokio::spawn(async move {
            let (sock, _) = listener.accept().await.unwrap();
            // Hold the connection open forever without writing.
            std::mem::forget(sock);
            std::future::pending::<()>().await;
        });
        let mut client = TcpStream::connect("10.6.0.3:80").await.unwrap();
        let mut buf = [0u8; 1];
        client.read_exact(&mut buf).await.unwrap();
    });
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

#[tokio::test]
async fn abort_cancels_a_parked_task() {
    let (tx, _rx_keepalive) = mpsc::unbounded_channel::<u32>();
    let handle = tokio::spawn(async move {
        // Parks forever: the keepalive receiver never gets a message
        // and is never dropped before the abort.
        tokio::time::sleep(Duration::from_secs(100_000)).await;
        tx.send(1).unwrap();
    });
    handle.abort();
    let err = handle.await.unwrap_err();
    assert!(err.is_cancelled());
}

#[tokio::test]
async fn join_handle_returns_task_output() {
    let handle = tokio::spawn(async { 2 + 2 });
    assert_eq!(handle.await.unwrap(), 4);
    let handle = tokio::spawn(async { "done".to_string() });
    assert_eq!(handle.await.unwrap(), "done");
    let handle = tokio::spawn(async {});
    tokio::task::yield_now().await;
    assert!(handle.is_finished());
    handle.await.unwrap();
}

// ---------------------------------------------------------------------------
// Sleep reuse & runtime reuse
// ---------------------------------------------------------------------------

#[tokio::test]
async fn reset_postpones_a_pending_sleep() {
    let start = Instant::now();
    let mut sleep = tokio::time::sleep(Duration::from_millis(100));
    tokio::time::sleep(Duration::from_millis(50)).await;
    sleep.reset(Instant::now() + Duration::from_millis(200));
    (&mut sleep).await;
    assert_eq!(start.elapsed(), Duration::from_millis(250));
}

#[tokio::test]
async fn reset_rearms_an_elapsed_sleep_without_reallocating() {
    let start = Instant::now();
    let mut sleep = tokio::time::sleep(Duration::from_millis(10));
    (&mut sleep).await;
    for round in 1..=5u64 {
        sleep.reset(Instant::now() + Duration::from_millis(10 * round));
        (&mut sleep).await;
    }
    assert_eq!(start.elapsed(), Duration::from_millis(10 + 10 + 20 + 30 + 40 + 50));
}

#[tokio::test]
async fn reset_moves_a_sleep_behind_its_same_deadline_peers() {
    // a registers first, b second; resetting a to the *same* deadline
    // re-registers it with a later seq, so b now fires first — the
    // lazy-deletion wheel must order ties by registration, not
    // creation.
    let (tx, mut rx) = mpsc::unbounded_channel::<&'static str>();
    let deadline = Instant::now() + Duration::from_millis(100);
    let mut a = tokio::time::sleep_until(deadline);
    let b = tokio::time::sleep_until(deadline);
    a.reset(deadline);
    let tx_a = tx.clone();
    tokio::spawn(async move {
        a.await;
        tx_a.send("a").unwrap();
    });
    tokio::spawn(async move {
        b.await;
        tx.send("b").unwrap();
    });
    let mut order = Vec::new();
    while let Some(label) = rx.recv().await {
        order.push(label);
    }
    assert_eq!(order, vec!["b", "a"]);
}

#[test]
fn runtime_reuse_rebinds_addresses_and_rezeroes_stats() {
    let mut rt = tokio::runtime::Runtime::new();
    for round in 0..3 {
        let stats = rt.block_on(async {
            let listener = TcpListener::bind("10.9.0.1:8080").await.unwrap();
            let client = tokio::spawn(async {
                let mut stream = TcpStream::connect("10.9.0.1:8080").await.unwrap();
                stream.write_all(b"ping").await.unwrap();
            });
            let (mut sock, peer) = listener.accept().await.unwrap();
            // Ephemeral ports must restart from the same base every
            // round, or reused runtimes would drift from fresh ones.
            assert_eq!(peer.port(), 49152, "round {round}");
            let mut buf = [0u8; 4];
            sock.read_exact(&mut buf).await.unwrap();
            client.await.unwrap();
            tokio::net::stats()
        });
        assert_eq!((stats.tcp_binds, stats.tcp_connects), (1, 1), "round {round}");
        rt.reset();
    }
}

#[test]
fn runtime_reset_drops_parked_tasks_and_their_state() {
    let marker = std::sync::Arc::new(());
    let mut rt = tokio::runtime::Runtime::new();
    rt.block_on(async {
        let held = std::sync::Arc::clone(&marker);
        tokio::spawn(async move {
            // Parks forever; the task owns `held` until cancelled.
            tokio::time::sleep(Duration::from_secs(1_000_000)).await;
            drop(held);
        });
        tokio::task::yield_now().await;
    });
    // block_on teardown already cancels parked tasks; reset must also
    // guarantee it on its own.
    rt.reset();
    assert_eq!(std::sync::Arc::strong_count(&marker), 1);
}

#[test]
fn reused_runtime_replays_a_run_identically() {
    // The same workload on a reused runtime must observe the same
    // modeled durations and stats as on the fresh first run — timers,
    // seq numbering and the net registry all rewind.
    fn workload(rt: &mut tokio::runtime::Runtime) -> (Duration, u64) {
        rt.block_on(async {
            let start = Instant::now();
            let listener = TcpListener::bind("10.9.1.1:80").await.unwrap();
            let server = tokio::spawn(async move {
                let (mut sock, _) = listener.accept().await.unwrap();
                let mut total = 0u64;
                let mut buf = [0u8; 1024];
                loop {
                    let n = sock.read(&mut buf).await.unwrap();
                    if n == 0 {
                        break;
                    }
                    total += n as u64;
                }
                total
            });
            let mut client = TcpStream::connect("10.9.1.1:80").await.unwrap();
            for _ in 0..10 {
                client.write_all(&[0xAB; 512]).await.unwrap();
                tokio::time::sleep(Duration::from_millis(7)).await;
            }
            drop(client);
            (start.elapsed(), server.await.unwrap())
        })
    }
    let mut rt = tokio::runtime::Runtime::new();
    let first = workload(&mut rt);
    rt.reset();
    let second = workload(&mut rt);
    assert_eq!(first, second);
}
