//! Virtual time: [`Instant`], [`sleep`], [`sleep_until`], [`timeout`]
//! and the test helper [`advance`].
//!
//! All of these read and register against the runtime's virtual clock
//! (see [`crate::runtime`]): a `sleep` never blocks the thread, it
//! parks the task until the executor auto-advances the clock to its
//! deadline. Code that measures elapsed time with [`Instant`] therefore
//! observes the *modeled* durations — which is exactly what the
//! throttled-link tests in this workspace assert on.

use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Duration as StdDuration;

use crate::runtime::{self, TimerEntry};

pub use std::time::Duration;

/// A measurement of the virtual clock, API-compatible with
/// `tokio::time::Instant`. Inside a runtime it advances only when the
/// executor's virtual clock does; outside one it falls back to real
/// time anchored at the same process epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant {
    since_epoch: StdDuration,
}

impl Instant {
    /// The current virtual time.
    pub fn now() -> Instant {
        Instant { since_epoch: runtime::now_since_epoch() }
    }

    /// Virtual time elapsed since this instant (zero if it lies in the
    /// future).
    pub fn elapsed(&self) -> StdDuration {
        Instant::now().saturating_duration_since(*self)
    }

    /// Duration since `earlier`, saturating to zero like tokio's
    /// `Instant::duration_since`.
    pub fn duration_since(&self, earlier: Instant) -> StdDuration {
        self.saturating_duration_since(earlier)
    }

    /// Duration since `earlier`, or zero when `earlier` is later.
    pub fn saturating_duration_since(&self, earlier: Instant) -> StdDuration {
        self.since_epoch.saturating_sub(earlier.since_epoch)
    }

    /// `self + duration`, or `None` on overflow.
    pub fn checked_add(&self, duration: StdDuration) -> Option<Instant> {
        self.since_epoch.checked_add(duration).map(|since_epoch| Instant { since_epoch })
    }

    /// `self - duration`, or `None` on underflow.
    pub fn checked_sub(&self, duration: StdDuration) -> Option<Instant> {
        self.since_epoch.checked_sub(duration).map(|since_epoch| Instant { since_epoch })
    }

    pub(crate) fn from_epoch_ns(ns: u64) -> Instant {
        Instant { since_epoch: StdDuration::from_nanos(ns) }
    }

    pub(crate) fn as_epoch_ns(&self) -> u64 {
        u64::try_from(self.since_epoch.as_nanos()).unwrap_or(u64::MAX)
    }
}

impl std::ops::Add<StdDuration> for Instant {
    type Output = Instant;

    fn add(self, rhs: StdDuration) -> Instant {
        self.checked_add(rhs).expect("instant overflow")
    }
}

impl std::ops::AddAssign<StdDuration> for Instant {
    fn add_assign(&mut self, rhs: StdDuration) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub<StdDuration> for Instant {
    type Output = Instant;

    fn sub(self, rhs: StdDuration) -> Instant {
        self.checked_sub(rhs).expect("instant underflow")
    }
}

impl std::ops::Sub<Instant> for Instant {
    type Output = StdDuration;

    fn sub(self, rhs: Instant) -> StdDuration {
        self.saturating_duration_since(rhs)
    }
}

/// Future returned by [`sleep`] and [`sleep_until`]; resolves when the
/// virtual clock reaches its deadline.
pub struct Sleep {
    entry: Arc<TimerEntry>,
}

impl Sleep {
    /// The instant this sleep resolves at.
    pub fn deadline(&self) -> Instant {
        Instant::from_epoch_ns(self.entry.deadline_ns())
    }

    /// Whether the deadline has been reached.
    pub fn is_elapsed(&self) -> bool {
        self.entry.is_fired() || runtime::current().clock_ns() >= self.entry.deadline_ns()
    }

    /// Re-arm this sleep at a new deadline, fired or not, without
    /// allocating: the existing timer entry is re-registered in the
    /// current runtime and the old registration is lazily discarded.
    /// Hot loops (e.g. a throttle waiting once per quantum) keep one
    /// `Sleep` and reset it instead of constructing a new one per
    /// wait. Unlike real tokio's `Sleep::reset` this takes `&mut self`
    /// rather than `Pin<&mut Self>` — the vendored `Sleep` is `Unpin`.
    pub fn reset(&mut self, deadline: Instant) {
        self.entry.reset(deadline.as_epoch_ns());
    }

    /// Install a fire-time gate (a vendored extension; real tokio has
    /// no equivalent). When the deadline arrives the runtime calls
    /// `gate` *instead of* waking the task: `None` lets the wake
    /// through, `Some(at)` silently re-arms the sleep at `at` —
    /// keeping the registered waker — and the task is not polled.
    ///
    /// This exists for condition-like waits whose readiness the waker
    /// can check cheaply at fire time (the token-bucket throttle's
    /// dry-bucket wait: "do I have my quantum yet?"). The gate must
    /// return exactly what the woken task would have concluded at the
    /// same virtual instant, or behavior diverges from the ungated
    /// version. It runs on the runtime's driving thread during timer
    /// dispatch; it must not poll, wake, or touch the timer wheel.
    ///
    /// The gate survives [`Sleep::reset`] — install once, re-arm
    /// forever.
    pub fn gate(&mut self, gate: impl Fn() -> Option<Instant> + Send + 'static) {
        self.entry.set_gate(Box::new(move || gate().map(|at| at.as_epoch_ns())));
    }
}

impl std::fmt::Debug for Sleep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sleep").field("deadline", &self.deadline()).finish()
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.entry.is_fired() || runtime::current().clock_ns() >= self.entry.deadline_ns() {
            Poll::Ready(())
        } else {
            self.entry.set_waker(cx.waker());
            Poll::Pending
        }
    }
}

/// Park the current task for `duration` of virtual time. Must be called
/// inside a runtime (the timer registers at creation, like tokio's).
pub fn sleep(duration: StdDuration) -> Sleep {
    sleep_until(Instant::now() + duration)
}

/// Park the current task until the virtual clock reaches `deadline`.
/// A deadline at or before now resolves on the first poll.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { entry: TimerEntry::register(deadline.as_epoch_ns()) }
}

/// Error returned by [`timeout`] when the deadline elapses first.
#[derive(Debug, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    future: F,
    delay: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: `future` is structurally pinned (never moved out of
        // `self`); `delay` is `Unpin`.
        let this = unsafe { self.get_unchecked_mut() };
        if let Poll::Ready(output) = unsafe { Pin::new_unchecked(&mut this.future) }.poll(cx) {
            return Poll::Ready(Ok(output));
        }
        match Pin::new(&mut this.delay).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed(()))),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Race `future` against a virtual-time deadline `duration` from now.
/// Resolves to `Ok(output)` if the future wins, `Err(Elapsed)` if the
/// clock reaches the deadline first.
pub fn timeout<F: Future>(duration: StdDuration, future: F) -> Timeout<F> {
    Timeout { future, delay: sleep(duration) }
}

/// Advance the virtual clock by `duration`, firing every timer whose
/// deadline is passed (in deadline order), then yield once so woken
/// tasks run. The equivalent of tokio's `time::advance` in
/// `start_paused` mode — which is this runtime's only mode.
pub async fn advance(duration: StdDuration) {
    runtime::current().advance_clock_by(duration);
    crate::task::yield_now().await;
}
