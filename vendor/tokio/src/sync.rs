//! Synchronization primitives: [`mpsc`] channels and [`Notify`].

use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Multi-producer, single-consumer channels mirroring `tokio::sync::mpsc`.
pub mod mpsc {
    use super::*;
    use std::collections::VecDeque;

    /// State shared by every sender and the receiver of one channel.
    struct Chan<T> {
        inner: Mutex<ChanInner<T>>,
    }

    struct ChanInner<T> {
        queue: VecDeque<T>,
        /// `None` marks an unbounded channel.
        capacity: Option<usize>,
        senders: usize,
        rx_alive: bool,
        rx_waker: Option<Waker>,
        /// Bounded senders parked on a full queue.
        send_wakers: Vec<Waker>,
    }

    fn new_chan<T>(capacity: Option<usize>) -> Arc<Chan<T>> {
        Arc::new(Chan {
            inner: Mutex::new(ChanInner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                rx_alive: true,
                rx_waker: None,
                send_wakers: Vec::new(),
            }),
        })
    }

    impl<T> Chan<T> {
        /// Pop one message; `Ready(None)` once every sender is gone and
        /// the queue is drained (or the receiver closed the channel).
        fn poll_recv(&self, cx: &mut Context<'_>) -> Poll<Option<T>> {
            let mut inner = self.inner.lock().unwrap();
            if let Some(value) = inner.queue.pop_front() {
                for waker in inner.send_wakers.drain(..) {
                    waker.wake();
                }
                return Poll::Ready(Some(value));
            }
            if inner.senders == 0 || !inner.rx_alive {
                return Poll::Ready(None);
            }
            inner.rx_waker = Some(cx.waker().clone());
            Poll::Pending
        }

        fn add_sender(&self) {
            self.inner.lock().unwrap().senders += 1;
        }

        fn drop_sender(&self) {
            let mut inner = self.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                if let Some(waker) = inner.rx_waker.take() {
                    waker.wake();
                }
            }
        }

        fn drop_receiver(&self) {
            let mut inner = self.inner.lock().unwrap();
            inner.rx_alive = false;
            inner.queue.clear();
            for waker in inner.send_wakers.drain(..) {
                waker.wake();
            }
        }
    }

    /// Error returned by `send` when the receiver half has been
    /// dropped; carries the unsent value like tokio's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "channel closed")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    // -- unbounded ----------------------------------------------------------

    /// Create an unbounded channel: sends never wait.
    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let chan = new_chan(None);
        (UnboundedSender { chan: Arc::clone(&chan) }, UnboundedReceiver { chan })
    }

    /// Sending half of an unbounded channel; cheap to clone.
    pub struct UnboundedSender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> UnboundedSender<T> {
        /// Enqueue `value` immediately (no awaiting). Fails only when
        /// the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.chan.inner.lock().unwrap();
            if !inner.rx_alive {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            if let Some(waker) = inner.rx_waker.take() {
                waker.wake();
            }
            Ok(())
        }

        /// Whether the receiving half has been dropped.
        pub fn is_closed(&self) -> bool {
            !self.chan.inner.lock().unwrap().rx_alive
        }
    }

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> UnboundedSender<T> {
            self.chan.add_sender();
            UnboundedSender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for UnboundedSender<T> {
        fn drop(&mut self) {
            self.chan.drop_sender();
        }
    }

    impl<T> std::fmt::Debug for UnboundedSender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("UnboundedSender").finish_non_exhaustive()
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct UnboundedReceiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> UnboundedReceiver<T> {
        /// Await the next message; `None` once every sender is dropped
        /// and the queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            std::future::poll_fn(|cx| self.chan.poll_recv(cx)).await
        }

        /// Pop a message without waiting, if one is queued.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            let mut inner = self.chan.inner.lock().unwrap();
            match inner.queue.pop_front() {
                Some(value) => Ok(value),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Close the channel: subsequent sends fail, queued messages
        /// are dropped, `recv` returns `None`.
        pub fn close(&mut self) {
            self.chan.drop_receiver();
        }
    }

    impl<T> Drop for UnboundedReceiver<T> {
        fn drop(&mut self) {
            self.chan.drop_receiver();
        }
    }

    impl<T> std::fmt::Debug for UnboundedReceiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("UnboundedReceiver").finish_non_exhaustive()
        }
    }

    /// Error returned by `try_recv` on an empty or disconnected
    /// channel.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now, but senders remain.
        Empty,
        /// No message queued and every sender has been dropped.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel empty"),
                TryRecvError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    // -- bounded ------------------------------------------------------------

    /// Create a bounded channel holding at most `capacity` queued
    /// messages; sends on a full queue wait for the receiver.
    pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "mpsc bounded channel requires capacity > 0");
        let chan = new_chan(Some(capacity));
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    /// Sending half of a bounded channel; cheap to clone.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, waiting while the queue is at capacity.
        /// Fails only when the receiver is gone.
        pub async fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut slot = Some(value);
            std::future::poll_fn(move |cx| {
                let mut inner = self.chan.inner.lock().unwrap();
                if !inner.rx_alive {
                    return Poll::Ready(Err(SendError(slot.take().expect("polled after ready"))));
                }
                let capacity = inner.capacity.expect("bounded channel has a capacity");
                if inner.queue.len() >= capacity {
                    inner.send_wakers.push(cx.waker().clone());
                    return Poll::Pending;
                }
                inner.queue.push_back(slot.take().expect("polled after ready"));
                if let Some(waker) = inner.rx_waker.take() {
                    waker.wake();
                }
                Poll::Ready(Ok(()))
            })
            .await
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.add_sender();
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.chan.drop_sender();
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Await the next message; `None` once every sender is dropped
        /// and the queue is drained.
        pub async fn recv(&mut self) -> Option<T> {
            std::future::poll_fn(|cx| self.chan.poll_recv(cx)).await
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.drop_receiver();
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }
}

// ---------------------------------------------------------------------------
// Notify
// ---------------------------------------------------------------------------

/// Task notification, mirroring `tokio::sync::Notify`'s semantics for
/// the two methods this workspace uses:
///
/// - A [`Notified`](Notify::notified) future records the notification
///   *generation* at creation, so a [`notify_waiters`] call made
///   between creating the future and first awaiting it is still
///   observed — the check-cache-then-wait pattern in the HLS proxy
///   depends on exactly this guarantee.
/// - [`notify_one`] stores a single permit that wakes and satisfies
///   one waiter (current or future).
///
/// [`notify_waiters`]: Notify::notify_waiters
/// [`notify_one`]: Notify::notify_one
#[derive(Default)]
pub struct Notify {
    inner: Mutex<NotifyInner>,
}

#[derive(Default)]
struct NotifyInner {
    /// Bumped by every `notify_waiters` call.
    generation: u64,
    /// One stored `notify_one` permit.
    permit: bool,
    waiters: Vec<Waker>,
}

impl Notify {
    /// Create a new `Notify` with no permit stored.
    pub fn new() -> Notify {
        Notify::default()
    }

    /// A future that resolves after the next [`Notify::notify_waiters`]
    /// call (counted from the moment `notified` is called, not from
    /// first poll) or by consuming a stored [`Notify::notify_one`]
    /// permit.
    pub fn notified(&self) -> Notified<'_> {
        Notified { notify: self, generation: self.inner.lock().unwrap().generation }
    }

    /// Wake every currently registered waiter and mark the generation
    /// so pending `Notified` futures created before this call resolve.
    pub fn notify_waiters(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.generation += 1;
        for waker in inner.waiters.drain(..) {
            waker.wake();
        }
    }

    /// Store one permit and wake one waiter if any is parked. The
    /// permit is consumed by the first `Notified` future polled after
    /// this call (tokio wakes one specific waiter; with a single
    /// consumer — the only pattern in this workspace — the semantics
    /// coincide).
    pub fn notify_one(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.permit = true;
        if let Some(waker) = inner.waiters.pop() {
            waker.wake();
        }
    }
}

impl std::fmt::Debug for Notify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Notify").finish_non_exhaustive()
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified<'a> {
    notify: &'a Notify,
    /// Generation observed at creation; any later `notify_waiters`
    /// resolves this future.
    generation: u64,
}

impl std::future::Future for Notified<'_> {
    type Output = ();

    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.notify.inner.lock().unwrap();
        if inner.generation > self.generation {
            return Poll::Ready(());
        }
        if inner.permit {
            inner.permit = false;
            return Poll::Ready(());
        }
        if !inner.waiters.iter().any(|w| w.will_wake(cx.waker())) {
            inner.waiters.push(cx.waker().clone());
        }
        Poll::Pending
    }
}
