//! The in-process **virtual network substrate**: async TCP and UDP
//! with no kernel sockets at all.
//!
//! Every runtime owns a `VirtualNet` registry mapping bound
//! `SocketAddr`s to virtual listeners and datagram sockets. A
//! `TcpStream` is a pair of the same bounded byte pipes that power
//! [`crate::io::duplex`], so reads, writes, backpressure and close
//! semantics reuse the duplex machinery unchanged and wake through the
//! normal waker path — there is no retry reactor and no readiness
//! scanning. Because nothing can ever arrive from outside the process,
//! a socket operation that is still parked when the executor runs out
//! of tasks *and* timers is a genuine deadlock; the runtime panics
//! with a diagnostic naming each parked operation (see
//! [`crate::runtime`]) instead of waiting on real time.
//!
//! Any IPv4/IPv6 address is a valid *virtual* address — `10.3.0.1:80`
//! works just as well as `127.0.0.1:0` and needs no privileges,
//! because the address space is per-runtime and purely in-memory. The
//! proxy fleet uses this to give every simulated home its own subnet.
//! Two runtimes (even on the same thread, sequentially) can bind the
//! same address: registries are never shared.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{IpAddr, SocketAddr, ToSocketAddrs};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::task::{Context, Poll, Waker};

use crate::io::{duplex, AsyncRead, AsyncWrite, DuplexStream, ReadBuf};
use crate::runtime::{self, Shared};

/// Per-direction byte capacity of a virtual TCP connection, standing
/// in for the kernel's socket buffers: writers see backpressure once
/// this many bytes are in flight.
const STREAM_CAPACITY: usize = 64 * 1024;

/// Maximum queued datagrams per UDP socket; like real UDP, excess
/// datagrams are silently dropped (deterministically: always the
/// newest).
const DATAGRAM_QUEUE: usize = 1024;

/// First port handed out for `:0` binds, mirroring the kernel's
/// ephemeral range.
const EPHEMERAL_BASE: u16 = 49152;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// What sits behind one bound address.
enum Binding {
    Tcp(Arc<Mutex<ListenerState>>),
    Udp(Arc<Mutex<UdpState>>),
}

/// Snapshot of a runtime's virtual-network activity, for tests that
/// assert the substrate (and nothing else) carried the traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Successful `TcpListener::bind` calls.
    pub tcp_binds: u64,
    /// Successful `TcpStream::connect` calls.
    pub tcp_connects: u64,
    /// Successful `UdpSocket::bind` calls.
    pub udp_binds: u64,
    /// Datagrams delivered to a bound socket's queue.
    pub datagrams: u64,
}

/// The per-runtime registry of virtual hosts and sockets. One instance
/// lives in each runtime's shared state; all the socket types in this
/// module resolve against it and against nothing else — this crate
/// contains no kernel socket whatsoever.
pub(crate) struct VirtualNet {
    bindings: Mutex<HashMap<SocketAddr, Binding>>,
    /// Next ephemeral port to try, per IP.
    next_port: Mutex<HashMap<IpAddr, u16>>,
    /// Socket operations currently parked (id → human-readable label),
    /// fueling the executor's deadlock diagnostic. Keyed by a unique
    /// per-operation id so re-parks overwrite in place.
    parked: Mutex<std::collections::BTreeMap<u64, (&'static str, SocketAddr)>>,
    tcp_binds: AtomicU64,
    tcp_connects: AtomicU64,
    udp_binds: AtomicU64,
    datagrams: AtomicU64,
}

impl VirtualNet {
    pub(crate) fn new() -> VirtualNet {
        VirtualNet {
            bindings: Mutex::new(HashMap::new()),
            next_port: Mutex::new(HashMap::new()),
            parked: Mutex::new(std::collections::BTreeMap::new()),
            tcp_binds: AtomicU64::new(0),
            tcp_connects: AtomicU64::new(0),
            udp_binds: AtomicU64::new(0),
            datagrams: AtomicU64::new(0),
        }
    }

    /// Forget every binding, parked-op label and ephemeral-port
    /// cursor, and zero the stats counters — the virtual-net half of
    /// [`crate::runtime::Runtime::reset`]. Map capacity is kept so a
    /// reused runtime re-binds without reallocating.
    pub(crate) fn reset(&self) {
        self.bindings.lock().unwrap().clear();
        self.next_port.lock().unwrap().clear();
        self.parked.lock().unwrap().clear();
        self.tcp_binds.store(0, Ordering::Relaxed);
        self.tcp_connects.store(0, Ordering::Relaxed);
        self.udp_binds.store(0, Ordering::Relaxed);
        self.datagrams.store(0, Ordering::Relaxed);
    }

    /// Labels of the currently parked socket operations, oldest first,
    /// for the executor's deadlock panic.
    pub(crate) fn parked_labels(&self) -> Vec<String> {
        self.parked.lock().unwrap().values().map(|(kind, addr)| format!("{kind} {addr}")).collect()
    }

    fn park(&self, op: u64, kind: &'static str, addr: SocketAddr) {
        self.parked.lock().unwrap().insert(op, (kind, addr));
    }

    fn unpark(&self, op: u64) {
        self.parked.lock().unwrap().remove(&op);
    }

    fn stats(&self) -> NetStats {
        NetStats {
            tcp_binds: self.tcp_binds.load(Ordering::Relaxed),
            tcp_connects: self.tcp_connects.load(Ordering::Relaxed),
            udp_binds: self.udp_binds.load(Ordering::Relaxed),
            datagrams: self.datagrams.load(Ordering::Relaxed),
        }
    }

    /// Resolve a bind request: explicit ports must be free, port `0`
    /// takes the next free ephemeral port on that IP.
    fn assign(
        &self,
        addr: SocketAddr,
        bindings: &HashMap<SocketAddr, Binding>,
    ) -> io::Result<SocketAddr> {
        if addr.ip().is_unspecified() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "virtual net requires a concrete address (0.0.0.0 has no meaning in-process)",
            ));
        }
        if addr.port() != 0 {
            if bindings.contains_key(&addr) {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("virtual address {addr} already bound"),
                ));
            }
            return Ok(addr);
        }
        let mut next_port = self.next_port.lock().unwrap();
        let cursor = next_port.entry(addr.ip()).or_insert(EPHEMERAL_BASE);
        for _ in 0..=(u16::MAX - EPHEMERAL_BASE) {
            let candidate = SocketAddr::new(addr.ip(), *cursor);
            *cursor = if *cursor == u16::MAX { EPHEMERAL_BASE } else { *cursor + 1 };
            if !bindings.contains_key(&candidate) {
                return Ok(candidate);
            }
        }
        Err(io::Error::new(
            io::ErrorKind::AddrInUse,
            format!("virtual ephemeral port range exhausted on {}", addr.ip()),
        ))
    }
}

/// Resolve `addr` to the single concrete `SocketAddr` the virtual net
/// keys on.
fn resolve<A: ToSocketAddrs>(addr: A) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing"))
}

/// The current runtime's virtual-network statistics. Panics outside a
/// runtime, like every other runtime service.
pub fn stats() -> NetStats {
    runtime::current().net().stats()
}

/// Unique ids for parked-operation bookkeeping. Process-wide is fine:
/// ids only need to be unique, never dense or deterministic.
fn next_op_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// One socket operation's slot in the deadlock diagnostic: its
/// process-unique id plus whether it is currently registered as
/// parked. The flag keeps the global parked map off the hot path —
/// `track` only touches the map on park/unpark *transitions*, so the
/// overwhelmingly common repeat polls (Ready after Ready, Pending
/// after Pending) cost one relaxed atomic instead of a global lock
/// plus a map operation.
#[derive(Debug)]
struct ParkSlot {
    id: u64,
    parked: AtomicBool,
}

impl ParkSlot {
    fn new() -> ParkSlot {
        ParkSlot { id: next_op_id(), parked: AtomicBool::new(false) }
    }

    /// Remove this op from the parked map if it is registered there
    /// (socket teardown).
    fn clear(&self, shared: &Weak<Shared>) {
        if self.parked.swap(false, Ordering::Relaxed) {
            if let Some(shared) = shared.upgrade() {
                shared.net().unpark(self.id);
            }
        }
    }
}

/// Track one poll result for the deadlock diagnostic: parked
/// operations are registered with their endpoint, completed ones are
/// cleared. Only state *transitions* touch the runtime's parked map.
fn track<T>(
    shared: &Weak<Shared>,
    slot: &ParkSlot,
    kind: &'static str,
    addr: SocketAddr,
    poll: Poll<T>,
) -> Poll<T> {
    match &poll {
        Poll::Pending => {
            if !slot.parked.swap(true, Ordering::Relaxed) {
                if let Some(shared) = shared.upgrade() {
                    shared.net().park(slot.id, kind, addr);
                }
            }
        }
        Poll::Ready(_) => {
            if slot.parked.swap(false, Ordering::Relaxed) {
                if let Some(shared) = shared.upgrade() {
                    shared.net().unpark(slot.id);
                }
            }
        }
    }
    poll
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// A pending or established inbound connection queue.
struct ListenerState {
    /// Accepted-but-not-yet-claimed peers: the server-side stream and
    /// the client's address.
    queue: VecDeque<(DuplexStream, SocketAddr)>,
    accept_waker: Option<Waker>,
}

/// A virtual TCP listener, mirroring `tokio::net::TcpListener`.
///
/// Binding registers the address with the runtime's `VirtualNet`;
/// dropping the listener releases it. Connections queue in memory and
/// are claimed by [`TcpListener::accept`].
pub struct TcpListener {
    state: Arc<Mutex<ListenerState>>,
    local: SocketAddr,
    shared: Weak<Shared>,
    accept_op: ParkSlot,
}

impl std::fmt::Debug for TcpListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpListener").field("local", &self.local).finish_non_exhaustive()
    }
}

impl TcpListener {
    /// Bind to a virtual address (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port, or any per-home address like `"10.4.0.1:8080"`).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let requested = resolve(addr)?;
        let shared = runtime::current();
        let net = shared.net();
        let mut bindings = net.bindings.lock().unwrap();
        let local = net.assign(requested, &bindings)?;
        let state =
            Arc::new(Mutex::new(ListenerState { queue: VecDeque::new(), accept_waker: None }));
        bindings.insert(local, Binding::Tcp(Arc::clone(&state)));
        net.tcp_binds.fetch_add(1, Ordering::Relaxed);
        Ok(TcpListener {
            state,
            local,
            shared: Arc::downgrade(&shared),
            accept_op: ParkSlot::new(),
        })
    }

    /// Accept one inbound connection, parking until a peer connects.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        std::future::poll_fn(|cx| {
            let poll = {
                let mut state = self.state.lock().unwrap();
                match state.queue.pop_front() {
                    Some((io, peer)) => {
                        Poll::Ready(Ok((TcpStream::new(io, self.local, peer), peer)))
                    }
                    None => {
                        match &state.accept_waker {
                            Some(w) if w.will_wake(cx.waker()) => {}
                            _ => state.accept_waker = Some(cx.waker().clone()),
                        }
                        Poll::Pending
                    }
                }
            };
            track(&self.shared, &self.accept_op, "tcp accept on", self.local, poll)
        })
        .await
    }

    /// The locally bound address (the assigned port for `:0` binds).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.local)
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        self.accept_op.clear(&self.shared);
        if let Some(shared) = self.shared.upgrade() {
            shared.net().bindings.lock().unwrap().remove(&self.local);
        }
        // Connections still queued are dropped here; their client ends
        // observe EOF / BrokenPipe through the pipe close semantics.
    }
}

/// A virtual TCP stream, mirroring `tokio::net::TcpStream`: one end of
/// a bidirectional pair of bounded in-memory pipes.
pub struct TcpStream {
    io: DuplexStream,
    local: SocketAddr,
    peer: SocketAddr,
    shared: Weak<Shared>,
    read_op: ParkSlot,
    write_op: ParkSlot,
}

impl std::fmt::Debug for TcpStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpStream")
            .field("local", &self.local)
            .field("peer", &self.peer)
            .finish_non_exhaustive()
    }
}

impl TcpStream {
    fn new(io: DuplexStream, local: SocketAddr, peer: SocketAddr) -> TcpStream {
        TcpStream {
            io,
            local,
            peer,
            shared: Arc::downgrade(&runtime::current()),
            read_op: ParkSlot::new(),
            write_op: ParkSlot::new(),
        }
    }

    /// Connect to a virtual listener. Like a kernel loopback
    /// handshake this completes synchronously: the connection is
    /// queued with the listener (whose accept task is woken) and both
    /// directions are immediately usable. With no listener bound at
    /// `addr` the connect fails with `ConnectionRefused`.
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let peer = resolve(addr)?;
        let shared = runtime::current();
        let net = shared.net();
        let listener = {
            let bindings = net.bindings.lock().unwrap();
            match bindings.get(&peer) {
                Some(Binding::Tcp(state)) => Arc::clone(state),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("no virtual listener bound at {peer}"),
                    ))
                }
            }
        };
        // The client claims an ephemeral port on the peer's IP: the
        // virtual net has no routing table, so "which host is the
        // client on" is a fiction we keep consistent by placing both
        // ends of a connection in the same address family and subnet.
        let local = {
            let bindings = net.bindings.lock().unwrap();
            net.assign(SocketAddr::new(peer.ip(), 0), &bindings)?
        };
        let (client_io, server_io) = duplex(STREAM_CAPACITY);
        let accept_waker = {
            let mut state = listener.lock().unwrap();
            state.queue.push_back((server_io, local));
            state.accept_waker.take()
        };
        // Wake outside the state lock (a wake may cascade into drops
        // that re-enter it).
        if let Some(waker) = accept_waker {
            waker.wake();
        }
        net.tcp_connects.fetch_add(1, Ordering::Relaxed);
        Ok(TcpStream::new(client_io, local, peer))
    }

    /// Set `TCP_NODELAY`. Virtual pipes have no Nagle batching, so
    /// this is a no-op kept for call-site compatibility.
    pub fn set_nodelay(&self, _nodelay: bool) -> io::Result<()> {
        Ok(())
    }

    /// The local address of this end of the connection.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.local)
    }

    /// The remote peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.peer)
    }
}

impl Drop for TcpStream {
    fn drop(&mut self) {
        self.read_op.clear(&self.shared);
        self.write_op.clear(&self.shared);
    }
}

impl AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        let poll = Pin::new(&mut this.io).poll_read(cx, buf);
        track(&this.shared, &this.read_op, "tcp read from", this.peer, poll)
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let this = self.get_mut();
        let poll = Pin::new(&mut this.io).poll_write(cx, buf);
        track(&this.shared, &this.write_op, "tcp write to", this.peer, poll)
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut self.get_mut().io).poll_flush(cx)
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut self.get_mut().io).poll_shutdown(cx)
    }

    fn poll_write_vectored(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        let this = self.get_mut();
        let poll = Pin::new(&mut this.io).poll_write_vectored(cx, bufs);
        track(&this.shared, &this.write_op, "tcp write to", this.peer, poll)
    }
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

struct UdpState {
    /// Received datagrams: payload plus sender address.
    queue: VecDeque<(Vec<u8>, SocketAddr)>,
    recv_waker: Option<Waker>,
}

/// A virtual UDP socket, mirroring `tokio::net::UdpSocket`. Datagrams
/// route through the runtime's `VirtualNet`: a send to an unbound
/// address fails with `ConnectionRefused` (the deterministic stand-in
/// for loopback ICMP), a send to a full queue silently drops the
/// datagram like real UDP.
pub struct UdpSocket {
    state: Arc<Mutex<UdpState>>,
    local: SocketAddr,
    shared: Weak<Shared>,
    recv_op: ParkSlot,
}

impl std::fmt::Debug for UdpSocket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdpSocket").field("local", &self.local).finish_non_exhaustive()
    }
}

impl UdpSocket {
    /// Bind to a virtual address (port 0 for ephemeral).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        let requested = resolve(addr)?;
        let shared = runtime::current();
        let net = shared.net();
        let mut bindings = net.bindings.lock().unwrap();
        let local = net.assign(requested, &bindings)?;
        let state = Arc::new(Mutex::new(UdpState { queue: VecDeque::new(), recv_waker: None }));
        bindings.insert(local, Binding::Udp(Arc::clone(&state)));
        net.udp_binds.fetch_add(1, Ordering::Relaxed);
        Ok(UdpSocket { state, local, shared: Arc::downgrade(&shared), recv_op: ParkSlot::new() })
    }

    /// Send one datagram to `target`, delivering it synchronously to
    /// the bound socket's queue and waking its receiver.
    pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
        let target = resolve(target)?;
        let shared = runtime::current();
        let net = shared.net();
        let receiver = {
            let bindings = net.bindings.lock().unwrap();
            match bindings.get(&target) {
                Some(Binding::Udp(state)) => Arc::clone(state),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        format!("no virtual UDP socket bound at {target}"),
                    ))
                }
            }
        };
        let recv_waker = {
            let mut state = receiver.lock().unwrap();
            if state.queue.len() < DATAGRAM_QUEUE {
                state.queue.push_back((buf.to_vec(), self.local));
                net.datagrams.fetch_add(1, Ordering::Relaxed);
                state.recv_waker.take()
            } else {
                // A dropped datagram still reports success, like the
                // kernel.
                None
            }
        };
        if let Some(waker) = recv_waker {
            waker.wake();
        }
        Ok(buf.len())
    }

    /// Receive one datagram, returning its length and sender. A
    /// datagram longer than `buf` is truncated (the tail is lost,
    /// matching recvfrom).
    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        std::future::poll_fn(|cx| {
            let poll = {
                let mut state = self.state.lock().unwrap();
                match state.queue.pop_front() {
                    Some((payload, from)) => {
                        let n = payload.len().min(buf.len());
                        buf[..n].copy_from_slice(&payload[..n]);
                        Poll::Ready(Ok((n, from)))
                    }
                    None => {
                        match &state.recv_waker {
                            Some(w) if w.will_wake(cx.waker()) => {}
                            _ => state.recv_waker = Some(cx.waker().clone()),
                        }
                        Poll::Pending
                    }
                }
            };
            track(&self.shared, &self.recv_op, "udp recv_from on", self.local, poll)
        })
        .await
    }

    /// The locally bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        Ok(self.local)
    }
}

impl Drop for UdpSocket {
    fn drop(&mut self) {
        self.recv_op.clear(&self.shared);
        if let Some(shared) = self.shared.upgrade() {
            shared.net().bindings.lock().unwrap().remove(&self.local);
        }
    }
}
