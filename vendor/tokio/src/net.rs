//! Loopback-only async TCP and UDP over nonblocking `std::net`
//! sockets.
//!
//! There is no epoll/kqueue reactor here. Every socket is switched to
//! nonblocking mode; an operation that returns `WouldBlock` parks its
//! waker with the runtime's *retry reactor* and the executor re-wakes
//! it whenever the system is otherwise idle (see [`crate::runtime`]).
//! That is sound — not a busy-loop — precisely because these sockets
//! are restricted to loopback: readiness on `127.0.0.1` changes only
//! when another task of this runtime (or a peer process, covered by
//! the executor's bounded real-time wait) writes, so one retry round
//! after each batch of work observes every transition. Addresses off
//! the loopback interface are rejected with `InvalidInput` rather than
//! silently spinning on a slow remote.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, ToSocketAddrs};
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::io::{AsyncRead, AsyncWrite, ReadBuf};
use crate::runtime;

/// Resolve `addr` and enforce the loopback-only contract.
fn resolve_loopback<A: ToSocketAddrs>(addr: A) -> io::Result<SocketAddr> {
    let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    })?;
    if !addr.ip().is_loopback() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "vendored tokio networking is loopback-only (see vendor/tokio docs)",
        ));
    }
    Ok(addr)
}

/// Run one nonblocking socket syscall from an async context: completed
/// results bump the runtime's progress counter, `WouldBlock` parks the
/// task with the retry reactor.
fn poll_syscall<T>(cx: &mut Context<'_>, result: io::Result<T>) -> Poll<io::Result<T>> {
    match result {
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
            runtime::current().register_io_waker(cx.waker().clone());
            Poll::Pending
        }
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            cx.waker().wake_by_ref();
            Poll::Pending
        }
        other => {
            runtime::current().io_op_completed();
            Poll::Ready(other)
        }
    }
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// A loopback TCP listener, mirroring `tokio::net::TcpListener`.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Bind to a loopback address (e.g. `"127.0.0.1:0"` for an
    /// ephemeral port).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let addr = resolve_loopback(addr)?;
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// Accept one inbound connection, parking until a peer connects.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        std::future::poll_fn(|cx| {
            poll_syscall(cx, self.inner.accept()).map(|r| {
                r.and_then(|(stream, peer)| {
                    stream.set_nonblocking(true)?;
                    Ok((TcpStream { inner: stream }, peer))
                })
            })
        })
        .await
    }

    /// The locally bound address (the real port for `:0` binds).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

/// A loopback TCP stream, mirroring `tokio::net::TcpStream`.
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connect to a loopback peer. The kernel completes a loopback
    /// handshake synchronously (the peer need not have accepted yet),
    /// so the blocking `connect` here never actually waits.
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let addr = resolve_loopback(addr)?;
        let inner = std::net::TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        runtime::current().io_op_completed();
        Ok(TcpStream { inner })
    }

    /// Set `TCP_NODELAY` (disable Nagle's algorithm).
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// The local address of this end of the connection.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// The remote peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }
}

impl AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        let dst = buf.initialize_unfilled();
        match poll_syscall(cx, (&this.inner).read(dst)) {
            Poll::Ready(Ok(n)) => {
                buf.advance(n);
                Poll::Ready(Ok(()))
            }
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let this = self.get_mut();
        poll_syscall(cx, (&this.inner).write(buf))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        // Kernel TCP sockets have no userspace buffer to flush.
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        match self.get_mut().inner.shutdown(Shutdown::Write) {
            Ok(()) | Err(_) => Poll::Ready(Ok(())), // NotConnected after peer close is fine
        }
    }
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

/// A loopback UDP socket, mirroring `tokio::net::UdpSocket`.
#[derive(Debug)]
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    /// Bind to a loopback address.
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        let addr = resolve_loopback(addr)?;
        let inner = std::net::UdpSocket::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(UdpSocket { inner })
    }

    /// Send one datagram to `target`.
    pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
        let target = resolve_loopback(target)?;
        std::future::poll_fn(|cx| poll_syscall(cx, self.inner.send_to(buf, target))).await
    }

    /// Receive one datagram, returning its length and sender.
    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        std::future::poll_fn(|cx| poll_syscall(cx, self.inner.recv_from(buf))).await
    }

    /// The locally bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}
