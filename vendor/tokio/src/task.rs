//! Task handles: [`spawn`], [`JoinHandle`], [`JoinError`] and
//! [`yield_now`].

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

pub use crate::runtime::spawn;

/// Completion slot shared between a spawned task and its
/// [`JoinHandle`].
pub(crate) struct JoinState<T> {
    inner: Mutex<JoinInner<T>>,
}

struct JoinInner<T> {
    result: Option<Result<T, JoinError>>,
    waker: Option<Waker>,
}

pub(crate) fn new_join_state<T>() -> Arc<JoinState<T>> {
    Arc::new(JoinState { inner: Mutex::new(JoinInner { result: None, waker: None }) })
}

/// Record the task's outcome (first writer wins) and wake the joiner.
pub(crate) fn complete<T>(state: &Arc<JoinState<T>>, result: Result<T, JoinError>) {
    let mut inner = state.inner.lock().unwrap();
    if inner.result.is_none() {
        inner.result = Some(result);
        if let Some(waker) = inner.waker.take() {
            waker.wake();
        }
    }
}

pub(crate) fn new_join_handle<T>(
    state: Arc<JoinState<T>>,
    task: Arc<crate::runtime::Task>,
) -> JoinHandle<T> {
    JoinHandle { state, task }
}

/// An owned permission to join a spawned task, mirroring tokio's
/// `JoinHandle`: a future resolving to the task's output, plus
/// [`abort`](JoinHandle::abort). Dropping the handle detaches the task
/// (it keeps running); it does not cancel it.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
    task: Arc<crate::runtime::Task>,
}

impl<T> JoinHandle<T> {
    /// Cancel the task: its future is dropped at the next scheduling
    /// point and the handle resolves to a cancelled [`JoinError`]. A
    /// task that already completed is unaffected.
    pub fn abort(&self) {
        use std::sync::atomic::Ordering;
        if !self.task.aborted.swap(true, Ordering::AcqRel) {
            complete(&self.state, Err(JoinError::cancelled()));
            // Schedule the task so its future is dropped promptly,
            // releasing sockets and buffers it holds.
            self.task.schedule();
        }
    }

    /// Whether the task has finished (completed or been aborted).
    pub fn is_finished(&self) -> bool {
        self.state.inner.lock().unwrap().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.state.inner.lock().unwrap();
        match inner.result.take() {
            Some(result) => Poll::Ready(result),
            None => {
                inner.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").field("is_finished", &self.is_finished()).finish()
    }
}

/// Error returned by a [`JoinHandle`]. The vendored runtime propagates
/// task panics (a panicking task aborts the whole test), so the only
/// inhabited variant is cancellation via [`JoinHandle::abort`].
#[derive(Debug)]
pub struct JoinError {
    cancelled: bool,
}

impl JoinError {
    fn cancelled() -> JoinError {
        JoinError { cancelled: true }
    }

    /// True when the task was cancelled with [`JoinHandle::abort`].
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task was cancelled")
    }
}

impl std::error::Error for JoinError {}

/// Yield back to the executor once, letting every other runnable task
/// (and the main future) take a turn before this one resumes.
pub async fn yield_now() {
    struct YieldNow {
        yielded: bool,
    }

    impl Future for YieldNow {
        type Output = ();

        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.yielded {
                Poll::Ready(())
            } else {
                self.yielded = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    YieldNow { yielded: false }.await
}
