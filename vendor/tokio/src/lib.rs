//! Offline placeholder for `tokio`.
//!
//! The build container has no crates.io access, and an async runtime is
//! not something this repository stubs meaningfully. This crate exists
//! solely so Cargo can resolve the workspace graph: the crates that
//! depend on tokio (`threegol-http`, `threegol-proxy`, and the root
//! crate's `net` feature) are excluded from the workspace's
//! `default-members` and do not build offline.
//!
//! ROADMAP "Open items" tracks restoring them, either by vendoring a
//! minimal single-threaded runtime with virtual time (enough for the
//! loopback prototype tests) or by building in an environment with
//! registry access.
