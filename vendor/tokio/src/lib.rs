//! Offline vendored `tokio`: a minimal single-threaded async runtime
//! with a **virtual-time clock** and **loopback-only networking**,
//! implementing exactly the API subset the `threegol-http` and
//! `threegol-proxy` crates use. It exists so the live loopback
//! prototype builds and tests in the offline container with no
//! crates.io access; see DESIGN.md §9 for the full architecture.
//!
//! What is implemented, and where:
//!
//! - [`runtime::block_on`] — the executor: single thread, FIFO task
//!   queue, retry reactor, auto-advancing virtual clock.
//! - [`spawn`] / [`task::JoinHandle`] (with `abort`) and
//!   [`task::yield_now`].
//! - [`time`] — virtual [`time::Instant`], [`time::sleep`],
//!   [`time::sleep_until`], [`time::timeout`], [`time::advance`].
//! - [`io`] — `AsyncRead`/`AsyncWrite`/`ReadBuf`, the `Ext` method
//!   traits, and the in-memory [`io::duplex`] pipe.
//! - [`net`] — loopback-only `TcpListener`/`TcpStream`/`UdpSocket`
//!   over nonblocking `std::net` sockets.
//! - [`sync`] — `mpsc` (bounded and unbounded) and `Notify`.
//! - `#[tokio::main]` / `#[tokio::test]` via the sibling
//!   `tokio-macros` crate; attribute arguments such as
//!   `start_paused = true` are accepted and ignored because the clock
//!   is *always* virtual and paused-with-auto-advance.
//!
//! Everything else of real tokio's surface is intentionally absent;
//! depending on it is a compile error rather than a silent stub.
//!
//! # Semantic deviations from tokio (all documented at the item)
//!
//! - Time is virtual: `sleep(100ms)` costs microseconds of real time
//!   and `time::Instant` measures modeled durations, which is what the
//!   throttled-link tests in this workspace assert on.
//! - Networking rejects non-loopback addresses with `InvalidInput`.
//! - A panicking task aborts the whole runtime (test) instead of being
//!   captured into a `JoinError`.
//! - `AsyncReadExt::read_buf` is concrete over the vendored
//!   [`bytes::BytesMut`].

#![warn(missing_docs)]

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
pub use tokio_macros::{main, test};
