//! Offline vendored `tokio`: a minimal single-threaded async runtime
//! with a **virtual-time clock** and a fully **in-process virtual
//! network**, implementing exactly the API subset the `threegol-http`
//! and `threegol-proxy` crates use. It exists so the live prototype
//! builds and tests in the offline container with no crates.io
//! access, and so a fleet of simulated homes can run deterministically
//! in one process; see DESIGN.md §9 for the full architecture.
//!
//! What is implemented, and where:
//!
//! - [`runtime::block_on`] — the executor: single thread, FIFO task
//!   queue, auto-advancing virtual clock.
//! - [`spawn`] / [`task::JoinHandle`] (with `abort`) and
//!   [`task::yield_now`].
//! - [`time`] — virtual [`time::Instant`], [`time::sleep`],
//!   [`time::sleep_until`], [`time::timeout`], [`time::advance`].
//! - [`io`] — `AsyncRead`/`AsyncWrite`/`ReadBuf`, the `Ext` method
//!   traits, and the in-memory [`io::duplex`] pipe.
//! - [`net`] — virtual `TcpListener`/`TcpStream`/`UdpSocket` over a
//!   per-runtime in-memory address registry; no kernel sockets at all,
//!   any address is bindable, and [`net::stats`] exposes counters for
//!   tests that assert it.
//! - [`sync`] — `mpsc` (bounded and unbounded) and `Notify`.
//! - `#[tokio::main]` / `#[tokio::test]` via the sibling
//!   `tokio-macros` crate; the only accepted attribute arguments are
//!   the ones whose semantics this runtime already provides (`flavor`
//!   and `start_paused`, plus `worker_threads` on `main`) — anything
//!   else is a compile error rather than a silently ignored knob.
//!
//! Everything else of real tokio's surface is intentionally absent;
//! depending on it is a compile error rather than a silent stub.
//!
//! # Semantic deviations from tokio (all documented at the item)
//!
//! - Time is virtual: `sleep(100ms)` costs microseconds of real time
//!   and `time::Instant` measures modeled durations, which is what the
//!   throttled-link tests in this workspace assert on.
//! - Networking is in-process: addresses live in a per-runtime
//!   registry, so `10.7.0.1:80` binds without privileges and two
//!   runtimes can use the same address concurrently. Connecting or
//!   sending to an unbound address fails with `ConnectionRefused`
//!   immediately.
//! - A panicking task aborts the whole runtime (test) instead of being
//!   captured into a `JoinError`.
//! - `AsyncReadExt::read_buf` is concrete over the vendored
//!   [`bytes::BytesMut`].

#![warn(missing_docs)]

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;
pub use tokio_macros::{main, test};
