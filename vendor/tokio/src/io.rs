//! Async I/O traits ([`AsyncRead`], [`AsyncWrite`]), the [`ReadBuf`]
//! cursor, the [`AsyncReadExt`]/[`AsyncWriteExt`] convenience methods,
//! and the in-memory [`duplex`] pipe.
//!
//! The traits are signature-compatible with tokio's so the workspace's
//! stream adapters (`ThrottledStream`, `CountingStream`, `HttpStream`)
//! compile unchanged. Two deliberate narrowings, documented where they
//! occur: [`ReadBuf`] wraps an initialized `&mut [u8]` (no
//! `MaybeUninit` plumbing), and [`AsyncReadExt::read_buf`] is concrete
//! over the vendored [`bytes::BytesMut`] instead of generic over a
//! `BufMut` trait this workspace doesn't vendor.

use std::future::Future;
use std::io;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Reads bytes asynchronously; the pull side of tokio's I/O model.
pub trait AsyncRead {
    /// Attempt to read into `buf`, appending to its filled region.
    /// Returning `Ready(Ok(()))` with nothing appended signals EOF.
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>>;
}

/// Writes bytes asynchronously; the push side of tokio's I/O model.
pub trait AsyncWrite {
    /// Attempt to write from `buf`, returning how many bytes were
    /// accepted.
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>>;

    /// Attempt to flush buffered data to the underlying sink.
    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;

    /// Attempt to shut down the write side, signalling EOF to the peer.
    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;

    /// Attempt a gather-write from several buffers, returning the total
    /// number of bytes accepted. The default writes only the first
    /// non-empty buffer via [`poll_write`](Self::poll_write); streams
    /// that can do better (the duplex pipe, the throttled adapters)
    /// override it so an HTTP head + body pair goes out in one wakeup.
    fn poll_write_vectored(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        match bufs.iter().find(|b| !b.is_empty()) {
            Some(buf) => self.poll_write(cx, buf),
            None => Poll::Ready(Ok(0)),
        }
    }
}

// ---------------------------------------------------------------------------
// ReadBuf
// ---------------------------------------------------------------------------

/// A cursor over a caller-provided byte buffer, tracking how much has
/// been filled. Unlike tokio's, the backing slice is always fully
/// initialized (`&mut [u8]`), so the `assume_init` bookkeeping is a
/// no-op kept only for call-site compatibility.
#[derive(Debug)]
pub struct ReadBuf<'a> {
    buf: &'a mut [u8],
    filled: usize,
}

impl<'a> ReadBuf<'a> {
    /// Wrap an initialized slice; the filled region starts empty.
    pub fn new(buf: &'a mut [u8]) -> ReadBuf<'a> {
        ReadBuf { buf, filled: 0 }
    }

    /// Total capacity of the underlying slice.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Bytes read so far.
    pub fn filled(&self) -> &[u8] {
        &self.buf[..self.filled]
    }

    /// Mutable view of the bytes read so far.
    pub fn filled_mut(&mut self) -> &mut [u8] {
        &mut self.buf[..self.filled]
    }

    /// Space left after the filled region.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.filled
    }

    /// The unfilled portion, ready to be written into (the backing
    /// slice is always initialized, so this is tokio's
    /// `initialize_unfilled` and `unfilled_mut` in one).
    pub fn initialize_unfilled(&mut self) -> &mut [u8] {
        &mut self.buf[self.filled..]
    }

    /// Mark `n` more bytes as filled (they must have been written via
    /// [`initialize_unfilled`](Self::initialize_unfilled)).
    pub fn advance(&mut self, n: usize) {
        self.set_filled(self.filled + n);
    }

    /// Set the absolute size of the filled region (may shrink it).
    pub fn set_filled(&mut self, n: usize) {
        assert!(n <= self.buf.len(), "filled region larger than buffer capacity");
        self.filled = n;
    }

    /// Declare `n` bytes after the filled region initialized. The
    /// backing slice always is, so this is a no-op; `unsafe` only to
    /// match tokio's signature at call sites.
    ///
    /// # Safety
    ///
    /// None required here; callers uphold tokio's contract anyway.
    pub unsafe fn assume_init(&mut self, n: usize) {
        debug_assert!(self.filled + n <= self.buf.len());
    }

    /// A sub-`ReadBuf` over at most `n` bytes of the unfilled region —
    /// the limiting device token-bucket adapters use to cap one read.
    pub fn take(&mut self, n: usize) -> ReadBuf<'_> {
        let max = n.min(self.remaining());
        let start = self.filled;
        ReadBuf::new(&mut self.buf[start..start + max])
    }

    /// Append a slice to the filled region. Panics when it does not
    /// fit.
    pub fn put_slice(&mut self, src: &[u8]) {
        assert!(src.len() <= self.remaining(), "put_slice overflows the read buffer");
        self.buf[self.filled..self.filled + src.len()].copy_from_slice(src);
        self.filled += src.len();
    }

    /// Reset the filled region to empty.
    pub fn clear(&mut self) {
        self.filled = 0;
    }
}

// ---------------------------------------------------------------------------
// Blanket and leaf implementations
// ---------------------------------------------------------------------------

impl<T: AsyncRead + Unpin + ?Sized> AsyncRead for &mut T {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_read(cx, buf)
    }
}

impl<T: AsyncWrite + Unpin + ?Sized> AsyncWrite for &mut T {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        Pin::new(&mut **self.get_mut()).poll_write(cx, buf)
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_flush(cx)
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_shutdown(cx)
    }

    fn poll_write_vectored(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        Pin::new(&mut **self.get_mut()).poll_write_vectored(cx, bufs)
    }
}

impl<T: AsyncRead + Unpin + ?Sized> AsyncRead for Box<T> {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_read(cx, buf)
    }
}

impl<T: AsyncWrite + Unpin + ?Sized> AsyncWrite for Box<T> {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        Pin::new(&mut **self.get_mut()).poll_write(cx, buf)
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_flush(cx)
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_shutdown(cx)
    }

    fn poll_write_vectored(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        Pin::new(&mut **self.get_mut()).poll_write_vectored(cx, bufs)
    }
}

/// An in-memory reader: yields the slice's bytes, then EOF.
impl AsyncRead for &[u8] {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        let n = this.len().min(buf.remaining());
        let (head, tail) = this.split_at(n);
        buf.put_slice(head);
        *this = tail;
        Poll::Ready(Ok(()))
    }
}

/// An in-memory writer: appends everything, never blocks.
impl AsyncWrite for Vec<u8> {
    fn poll_write(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        self.get_mut().extend_from_slice(buf);
        Poll::Ready(Ok(buf.len()))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_write_vectored(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        let this = self.get_mut();
        let mut n = 0;
        for buf in bufs {
            this.extend_from_slice(buf);
            n += buf.len();
        }
        Poll::Ready(Ok(n))
    }
}

// ---------------------------------------------------------------------------
// Extension traits
// ---------------------------------------------------------------------------

/// `await`-able convenience methods over any [`AsyncRead`], mirroring
/// the tokio methods this workspace uses.
pub trait AsyncReadExt: AsyncRead {
    /// Read some bytes into `buf`, returning how many. Zero means EOF
    /// (or an empty `buf`).
    fn read(&mut self, buf: &mut [u8]) -> impl Future<Output = io::Result<usize>>
    where
        Self: Unpin,
    {
        async move {
            let mut read_buf = ReadBuf::new(buf);
            std::future::poll_fn(|cx| Pin::new(&mut *self).poll_read(cx, &mut read_buf)).await?;
            Ok(read_buf.filled().len())
        }
    }

    /// Read exactly `buf.len()` bytes, failing with `UnexpectedEof` if
    /// the stream ends first.
    fn read_exact(&mut self, buf: &mut [u8]) -> impl Future<Output = io::Result<usize>>
    where
        Self: Unpin,
    {
        async move {
            let mut filled = 0;
            while filled < buf.len() {
                let n = self.read(&mut buf[filled..]).await?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "early eof while reading exact length",
                    ));
                }
                filled += n;
            }
            Ok(filled)
        }
    }

    /// Read until EOF, appending to `buf`; returns the number of bytes
    /// read.
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> impl Future<Output = io::Result<usize>>
    where
        Self: Unpin,
    {
        async move {
            let mut total = 0;
            let mut chunk = [0u8; 8192];
            loop {
                let n = self.read(&mut chunk).await?;
                if n == 0 {
                    return Ok(total);
                }
                buf.extend_from_slice(&chunk[..n]);
                total += n;
            }
        }
    }

    /// Read some bytes and append them to `buf`, growing it; returns
    /// how many were read (zero at EOF). Concrete over the vendored
    /// [`bytes::BytesMut`] where tokio is generic over `bytes::BufMut`
    /// — this workspace only ever passes `BytesMut`.
    fn read_buf(&mut self, buf: &mut bytes::BytesMut) -> impl Future<Output = io::Result<usize>>
    where
        Self: Unpin,
    {
        async move {
            // Read straight into the buffer's spare capacity instead of
            // bouncing through a stack chunk. The window is bounded so
            // the zero-fill of not-yet-read bytes stays cheap even when
            // a large body reservation leaves megabytes of spare room.
            const MIN_READ: usize = 8 * 1024;
            const MAX_READ: usize = 64 * 1024;
            let window = buf.spare_capacity().clamp(MIN_READ, MAX_READ);
            let old_len = buf.len();
            buf.resize_for_read(old_len + window);
            let n = self.read(&mut buf.as_mut()[old_len..]).await;
            buf.truncate(old_len + *n.as_ref().unwrap_or(&0));
            n
        }
    }
}

impl<T: AsyncRead + ?Sized> AsyncReadExt for T {}

/// `await`-able convenience methods over any [`AsyncWrite`], mirroring
/// the tokio methods this workspace uses.
pub trait AsyncWriteExt: AsyncWrite {
    /// Write some bytes from `src`, returning how many were accepted.
    fn write(&mut self, src: &[u8]) -> impl Future<Output = io::Result<usize>>
    where
        Self: Unpin,
    {
        async move { std::future::poll_fn(|cx| Pin::new(&mut *self).poll_write(cx, src)).await }
    }

    /// Gather-write from several buffers in one syscall-equivalent,
    /// returning how many bytes were accepted in total.
    fn write_vectored<'a>(
        &'a mut self,
        bufs: &'a [io::IoSlice<'a>],
    ) -> impl Future<Output = io::Result<usize>> + 'a
    where
        Self: Unpin,
    {
        async move {
            std::future::poll_fn(|cx| Pin::new(&mut *self).poll_write_vectored(cx, bufs)).await
        }
    }

    /// Write the whole of `src`, failing with `WriteZero` if the sink
    /// stops accepting bytes.
    fn write_all(&mut self, src: &[u8]) -> impl Future<Output = io::Result<()>>
    where
        Self: Unpin,
    {
        async move {
            let mut written = 0;
            while written < src.len() {
                let n = self.write(&src[written..]).await?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "wrote zero bytes of a non-empty buffer",
                    ));
                }
                written += n;
            }
            Ok(())
        }
    }

    /// Flush buffered data down to the underlying sink.
    fn flush(&mut self) -> impl Future<Output = io::Result<()>>
    where
        Self: Unpin,
    {
        async move { std::future::poll_fn(|cx| Pin::new(&mut *self).poll_flush(cx)).await }
    }

    /// Shut down the write side, signalling EOF to the peer.
    fn shutdown(&mut self) -> impl Future<Output = io::Result<()>>
    where
        Self: Unpin,
    {
        async move { std::future::poll_fn(|cx| Pin::new(&mut *self).poll_shutdown(cx)).await }
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWriteExt for T {}

// ---------------------------------------------------------------------------
// duplex
// ---------------------------------------------------------------------------

/// A fixed-capacity byte ring over flat storage. Both transfer
/// directions are bulk `copy_from_slice`s of at most two segments —
/// a `VecDeque<u8>` here would push and pop element-wise, which at
/// pipe bandwidth (every proxied byte crosses several pipes) is the
/// difference between memcpy speed and ~1 ns/byte.
#[derive(Debug)]
struct Ring {
    buf: Box<[u8]>,
    /// Read position; data occupies `head..head + len` modulo capacity.
    head: usize,
    len: usize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring { buf: vec![0; capacity].into_boxed_slice(), head: 0, len: 0 }
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn space(&self) -> usize {
        self.buf.len() - self.len
    }

    fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Copy as much of `src` as fits, returning how much was taken.
    fn write(&mut self, src: &[u8]) -> usize {
        let n = src.len().min(self.space());
        if n == 0 {
            return 0;
        }
        let mut tail = self.head + self.len;
        if tail >= self.buf.len() {
            tail -= self.buf.len();
        }
        let first = n.min(self.buf.len() - tail);
        self.buf[tail..tail + first].copy_from_slice(&src[..first]);
        self.buf[..n - first].copy_from_slice(&src[first..n]);
        self.len += n;
        n
    }

    /// Copy up to `dst.remaining()` bytes out, returning how many.
    fn read(&mut self, dst: &mut ReadBuf<'_>) -> usize {
        let n = self.len.min(dst.remaining());
        if n == 0 {
            return 0;
        }
        let first = n.min(self.buf.len() - self.head);
        dst.put_slice(&self.buf[self.head..self.head + first]);
        dst.put_slice(&self.buf[..n - first]);
        self.head += n;
        if self.head >= self.buf.len() {
            self.head -= self.buf.len();
        }
        self.len -= n;
        n
    }
}

/// One direction of a duplex pair: a bounded byte ring plus the wakers
/// of whoever is parked on it.
#[derive(Debug)]
struct Pipe {
    buf: Ring,
    read_waker: Option<Waker>,
    write_waker: Option<Waker>,
    /// Writer gone or shut down: reads drain the buffer then see EOF.
    write_closed: bool,
    /// Reader gone: writes fail with `BrokenPipe`.
    read_closed: bool,
}

impl Pipe {
    fn new(capacity: usize) -> Pipe {
        Pipe {
            buf: Ring::new(capacity),
            read_waker: None,
            write_waker: None,
            write_closed: false,
            read_closed: false,
        }
    }
}

/// One endpoint of an in-memory, bidirectional, bounded-capacity byte
/// stream created by [`duplex`]. Dropping an endpoint signals EOF to
/// the peer's reads and `BrokenPipe` to the peer's writes.
#[derive(Debug)]
pub struct DuplexStream {
    /// Pipe this endpoint reads from (peer writes into it).
    read: Arc<Mutex<Pipe>>,
    /// Pipe this endpoint writes into (peer reads from it).
    write: Arc<Mutex<Pipe>>,
}

/// Create a pair of connected in-memory streams, each direction
/// buffering at most `max_buf_size` bytes before writes see
/// backpressure. The workspace's codec and throttle tests are built on
/// this.
pub fn duplex(max_buf_size: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b = Arc::new(Mutex::new(Pipe::new(max_buf_size)));
    let b_to_a = Arc::new(Mutex::new(Pipe::new(max_buf_size)));
    (
        DuplexStream { read: Arc::clone(&b_to_a), write: Arc::clone(&a_to_b) },
        DuplexStream { read: a_to_b, write: b_to_a },
    )
}

impl AsyncRead for DuplexStream {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let mut pipe = self.read.lock().unwrap();
        if !pipe.buf.is_empty() {
            pipe.buf.read(buf);
            // Watermark: a writer only parks on a *full* pipe, so batch
            // its wake until half the capacity has drained rather than
            // waking per read. An empty pipe always clears the
            // watermark, so the parked writer can never be stranded.
            if pipe.write_waker.is_some() && pipe.buf.space() >= pipe.buf.capacity() / 2 {
                if let Some(waker) = pipe.write_waker.take() {
                    waker.wake();
                }
            }
            Poll::Ready(Ok(()))
        } else if pipe.write_closed {
            Poll::Ready(Ok(())) // nothing filled: EOF
        } else {
            match &pipe.read_waker {
                Some(w) if w.will_wake(cx.waker()) => {}
                _ => pipe.read_waker = Some(cx.waker().clone()),
            }
            Poll::Pending
        }
    }
}

impl AsyncWrite for DuplexStream {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let mut pipe = self.write.lock().unwrap();
        if pipe.read_closed {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "duplex peer dropped",
            )));
        }
        if pipe.buf.space() == 0 {
            match &pipe.write_waker {
                Some(w) if w.will_wake(cx.waker()) => {}
                _ => pipe.write_waker = Some(cx.waker().clone()),
            }
            return Poll::Pending;
        }
        let n = pipe.buf.write(buf);
        if let Some(waker) = pipe.read_waker.take() {
            waker.wake();
        }
        Poll::Ready(Ok(n))
    }

    /// Gather-write: fill the pipe across all the slices before waking
    /// the reader, so a head + body pair costs one wakeup round-trip
    /// instead of two.
    fn poll_write_vectored(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        bufs: &[io::IoSlice<'_>],
    ) -> Poll<io::Result<usize>> {
        let mut pipe = self.write.lock().unwrap();
        if pipe.read_closed {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "duplex peer dropped",
            )));
        }
        if pipe.buf.space() == 0 {
            if bufs.iter().all(|b| b.is_empty()) {
                return Poll::Ready(Ok(0));
            }
            match &pipe.write_waker {
                Some(w) if w.will_wake(cx.waker()) => {}
                _ => pipe.write_waker = Some(cx.waker().clone()),
            }
            return Poll::Pending;
        }
        let mut n = 0;
        for buf in bufs {
            let take = pipe.buf.write(buf);
            n += take;
            if take < buf.len() {
                break;
            }
        }
        if let Some(waker) = pipe.read_waker.take() {
            waker.wake();
        }
        Poll::Ready(Ok(n))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        let mut pipe = self.write.lock().unwrap();
        pipe.write_closed = true;
        if let Some(waker) = pipe.read_waker.take() {
            waker.wake();
        }
        Poll::Ready(Ok(()))
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        let read_waker = {
            let mut write = self.write.lock().unwrap();
            write.write_closed = true;
            write.read_waker.take()
        };
        let write_waker = {
            let mut read = self.read.lock().unwrap();
            read.read_closed = true;
            read.write_waker.take()
        };
        // Wake with no pipe lock held: during runtime teardown a wake
        // can be the last reference to the peer's task, so it cascades
        // into dropping the peer — and the peer's end of this very
        // pipe, which must be able to re-take the locks above.
        if let Some(waker) = read_waker {
            waker.wake();
        }
        if let Some(waker) = write_waker {
            waker.wake();
        }
    }
}
