//! The single-threaded executor and its virtual-time clock.
//!
//! One [`block_on`] call owns one runtime: a FIFO ready-queue of
//! spawned tasks, a timer wheel (a `BTreeMap` keyed by virtual-time
//! deadline), a **virtual clock**, and a `VirtualNet`
//! registry backing every socket in [`crate::net`].
//!
//! # Scheduling loop
//!
//! The loop runs two strictly ordered phases; a phase only runs when
//! every earlier phase is out of work:
//!
//! 1. **Runnable tasks** — poll the main future when woken, then drain
//!    the ready queue.
//! 2. **Auto-advance** — if no task ran, the virtual clock jumps to
//!    the earliest pending timer deadline and fires every timer due at
//!    it. This is why `sleep(100ms)`-style tests finish in
//!    microseconds of real time, deterministically.
//!
//! There is no I/O phase: sockets are virtual, so every byte and every
//! datagram is produced by a task in this same runtime and delivery
//! wakes the consumer through the ordinary waker path, exactly like
//! [`crate::io::duplex`]. The old *retry reactor* (re-polling parked
//! `WouldBlock` operations) and the real-time wait for kernel
//! readiness are gone — with no kernel sockets there is nothing
//! outside the process to wait for.
//!
//! If both phases are empty while the main future is pending, the
//! program is deadlocked and the runtime panics with a diagnosis
//! instead of hanging the test suite. Socket operations register the
//! endpoint they are parked on, so the panic names each one (e.g.
//! `tcp accept on 10.0.0.1:8080`) rather than merely counting them.
//!
//! # Virtual time
//!
//! The clock (nanoseconds since a process-wide epoch) only moves in
//! phase 3 or via [`crate::time::advance`]; real time spent inside
//! polls contributes nothing. [`crate::time::Instant::now`] reads this
//! clock, so durations measured by throttled-transfer tests reflect
//! the *modeled* link rates, not host speed. Outside a runtime,
//! `Instant::now` falls back to real time since the same epoch so the
//! two never run backwards relative to each other.

use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::task::JoinHandle;

// ---------------------------------------------------------------------------
// Process epoch & thread-local current runtime
// ---------------------------------------------------------------------------

/// Process-wide real-time anchor for the virtual clock, so `Instant`s
/// taken outside any runtime stay coherent with virtual ones.
fn epoch() -> std::time::Instant {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now)
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<Shared>>> =
        const { std::cell::RefCell::new(None) };
}

/// The runtime owning the current thread, for primitives that must
/// register timers, tasks or virtual sockets.
pub(crate) fn current() -> Arc<Shared> {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        panic!(
            "no vendored-tokio runtime on this thread: enter one via \
             tokio::runtime::block_on, #[tokio::main] or #[tokio::test]"
        )
    })
}

/// Virtual nanoseconds since the process epoch (falls back to real
/// elapsed time outside a runtime).
pub(crate) fn now_since_epoch() -> Duration {
    match CURRENT.with(|c| c.borrow().clone()) {
        Some(shared) => Duration::from_nanos(shared.clock_ns.load(Ordering::Acquire)),
        None => epoch().elapsed(),
    }
}

/// Tears the runtime down when `block_on` exits, on both the success
/// and the unwind path: cancels every task still alive, then resets
/// the thread-local runtime slot.
///
/// The cancellation is load-bearing, not cosmetic. A parked task is a
/// reference cycle: its future owns the `Sleep`s and pipe halves it
/// awaits, and those store cloned `Waker`s — which are `Arc<Task>`
/// handles right back to the task. Announcer loops, accept loops and
/// half-open connections are all parked when the root future finishes,
/// so without breaking the cycles every `block_on` would leak its
/// parked tasks and all the buffers they own (megabytes per simulated
/// household, compounding across a fleet run).
struct ContextGuard {
    shared: Arc<Shared>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        // Dropping a future can wake peers (rescheduling tasks) or, in
        // principle, spawn; both only touch the queue/registry cleared
        // below. Futures are dropped while CURRENT is still set so any
        // Drop impl that consults the runtime finds it.
        let tasks: Vec<Weak<Task>> = std::mem::take(&mut *self.shared.tasks.lock().unwrap());
        for weak in tasks {
            if let Some(task) = weak.upgrade() {
                *task.future.lock().unwrap() = None;
            }
        }
        self.shared.queue.lock().unwrap().clear();
        self.shared.timers.lock().unwrap().clear();
        CURRENT.with(|c| c.borrow_mut().take());
    }
}

// ---------------------------------------------------------------------------
// Shared runtime state
// ---------------------------------------------------------------------------

/// State shared between the executor loop, spawned tasks, timers and
/// socket futures. One instance per `block_on` call.
pub(crate) struct Shared {
    /// Tasks woken and awaiting a poll, FIFO.
    queue: Mutex<VecDeque<Arc<Task>>>,
    /// Set when the `block_on` root future is woken.
    main_woken: AtomicBool,
    /// Pending timers: (virtual deadline ns, unique seq) → entry. Weak,
    /// so dropped `Sleep`s vanish on the next prune.
    timers: Mutex<BTreeMap<(u64, u64), std::sync::Weak<TimerEntry>>>,
    timer_seq: AtomicU64,
    /// Every task ever spawned, weakly. Walked once at teardown to
    /// cancel parked tasks (see [`ContextGuard`]); completed tasks are
    /// dead weak refs by then.
    tasks: Mutex<Vec<Weak<Task>>>,
    /// Virtual now, nanoseconds since [`epoch`].
    clock_ns: AtomicU64,
    /// This runtime's virtual network: bound addresses, connection
    /// queues and parked-socket-op diagnostics. Per-runtime, so
    /// concurrent runtimes (e.g. one per simulated home on a worker
    /// pool) have fully isolated address spaces.
    net: crate::net::VirtualNet,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            main_woken: AtomicBool::new(true),
            timers: Mutex::new(BTreeMap::new()),
            timer_seq: AtomicU64::new(0),
            tasks: Mutex::new(Vec::new()),
            clock_ns: AtomicU64::new(epoch().elapsed().as_nanos() as u64),
            net: crate::net::VirtualNet::new(),
        }
    }

    fn pop_task(&self) -> Option<Arc<Task>> {
        self.queue.lock().unwrap().pop_front()
    }

    pub(crate) fn push_task(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
    }

    /// This runtime's virtual network registry.
    pub(crate) fn net(&self) -> &crate::net::VirtualNet {
        &self.net
    }

    pub(crate) fn clock_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Acquire)
    }

    /// Register a timer entry firing at `deadline_ns` virtual time.
    pub(crate) fn register_timer(&self, entry: &Arc<TimerEntry>) {
        let seq = self.timer_seq.fetch_add(1, Ordering::Relaxed);
        self.timers.lock().unwrap().insert((entry.deadline_ns, seq), Arc::downgrade(entry));
    }

    /// Earliest deadline with a live `Sleep` attached; prunes dropped
    /// entries on the way.
    fn next_live_deadline(&self) -> Option<u64> {
        let mut timers = self.timers.lock().unwrap();
        while let Some((&key, weak)) = timers.first_key_value() {
            if weak.strong_count() == 0 {
                timers.remove(&key);
                continue;
            }
            return Some(key.0);
        }
        None
    }

    /// Fire every live timer whose deadline is at or before the clock.
    fn fire_due(&self) {
        let now = self.clock_ns();
        let due: Vec<std::sync::Weak<TimerEntry>> = {
            let mut timers = self.timers.lock().unwrap();
            let later = timers.split_off(&(now + 1, 0));
            let due = std::mem::replace(&mut *timers, later);
            due.into_values().collect()
        };
        for weak in due {
            if let Some(entry) = weak.upgrade() {
                entry.fire();
            }
        }
    }

    /// Phase-3 auto-advance: jump the clock to the next timer deadline
    /// and fire it. Returns false when no timer is pending.
    fn auto_advance(&self) -> bool {
        let Some(deadline) = self.next_live_deadline() else {
            return false;
        };
        self.clock_ns.fetch_max(deadline, Ordering::AcqRel);
        self.fire_due();
        true
    }

    /// Manual advance (`tokio::time::advance`): move the clock by `d`,
    /// firing every timer passed along the way in deadline order.
    pub(crate) fn advance_clock_by(&self, d: Duration) {
        let target =
            self.clock_ns().saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        while let Some(deadline) = self.next_live_deadline() {
            if deadline > target {
                break;
            }
            self.clock_ns.fetch_max(deadline, Ordering::AcqRel);
            self.fire_due();
        }
        self.clock_ns.fetch_max(target, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

/// One pending `Sleep`: fires at `deadline_ns` virtual time.
#[derive(Debug)]
pub(crate) struct TimerEntry {
    pub(crate) deadline_ns: u64,
    fired: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

impl TimerEntry {
    /// Create and register an entry in the current runtime.
    pub(crate) fn register(deadline_ns: u64) -> Arc<TimerEntry> {
        let entry = Arc::new(TimerEntry {
            deadline_ns,
            fired: AtomicBool::new(false),
            waker: Mutex::new(None),
        });
        current().register_timer(&entry);
        entry
    }

    pub(crate) fn is_fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    pub(crate) fn set_waker(&self, waker: &Waker) {
        *self.waker.lock().unwrap() = Some(waker.clone());
    }

    fn fire(&self) {
        self.fired.store(true, Ordering::Release);
        if let Some(waker) = self.waker.lock().unwrap().take() {
            waker.wake();
        }
    }
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

/// A spawned task: the erased future plus scheduling flags. Pushed by
/// wakers onto the shared ready queue; polled only by the runtime
/// thread.
pub(crate) struct Task {
    /// `None` once completed or aborted. Taken out during a poll so a
    /// reentrant self-wake never observes the lock held.
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    /// True while sitting in the ready queue (dedupes wakes).
    scheduled: AtomicBool,
    /// Set by `JoinHandle::abort`; the next poll drops the future.
    pub(crate) aborted: AtomicBool,
    shared: Weak<Shared>,
}

impl Task {
    /// Push onto the ready queue unless already queued.
    pub(crate) fn schedule(self: &Arc<Self>) {
        if !self.scheduled.swap(true, Ordering::AcqRel) {
            if let Some(shared) = self.shared.upgrade() {
                shared.push_task(Arc::clone(self));
            }
        }
    }

    /// Poll the task once (or drop its future if aborted).
    fn run(self: &Arc<Self>) {
        self.scheduled.store(false, Ordering::Release);
        if self.aborted.load(Ordering::Acquire) {
            *self.future.lock().unwrap() = None;
            return;
        }
        let Some(mut future) = self.future.lock().unwrap().take() else {
            return;
        };
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        if future.as_mut().poll(&mut cx).is_pending() {
            *self.future.lock().unwrap() = Some(future);
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// Waker target for the `block_on` root future.
struct MainWaker {
    shared: Arc<Shared>,
}

impl Wake for MainWaker {
    fn wake(self: Arc<Self>) {
        self.shared.main_woken.store(true, Ordering::Release);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.main_woken.store(true, Ordering::Release);
    }
}

/// Spawn `future` onto the current runtime (the vendored equivalent of
/// `tokio::spawn`). Panics outside a runtime. Unlike the real tokio the
/// task never migrates threads, but the `Send` bound is kept so code
/// written against this shim stays compatible with the real one.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let shared = current();
    let state = crate::task::new_join_state::<F::Output>();
    let completion = Arc::clone(&state);
    let task = Arc::new(Task {
        future: Mutex::new(Some(Box::pin(async move {
            let output = future.await;
            crate::task::complete(&completion, Ok(output));
        }))),
        scheduled: AtomicBool::new(false),
        aborted: AtomicBool::new(false),
        shared: Arc::downgrade(&shared),
    });
    shared.tasks.lock().unwrap().push(Arc::downgrade(&task));
    task.schedule();
    crate::task::new_join_handle(state, task)
}

// ---------------------------------------------------------------------------
// block_on
// ---------------------------------------------------------------------------

/// Run `future` to completion on a fresh single-threaded runtime with
/// a virtual clock, driving every task it spawns. This is the only
/// entry point; `#[tokio::main]` and `#[tokio::test]` expand to it.
pub fn block_on<F: Future>(future: F) -> F::Output {
    CURRENT.with(|c| {
        assert!(
            c.borrow().is_none(),
            "vendored tokio runtime cannot be nested: block_on inside block_on"
        );
    });
    let shared = Arc::new(Shared::new());
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&shared)));
    let _guard = ContextGuard { shared: Arc::clone(&shared) };

    let mut future = std::pin::pin!(future);
    let main_waker = Waker::from(Arc::new(MainWaker { shared: Arc::clone(&shared) }));
    let mut cx = Context::from_waker(&main_waker);

    // Polls the root future (returning on completion) and drains the
    // ready queue until nothing is runnable.
    macro_rules! drain_runnable {
        () => {
            loop {
                let mut any = false;
                if shared.main_woken.swap(false, Ordering::AcqRel) {
                    if let Poll::Ready(output) = future.as_mut().poll(&mut cx) {
                        return output;
                    }
                    any = true;
                }
                while let Some(task) = shared.pop_task() {
                    task.run();
                    any = true;
                }
                if !any {
                    break;
                }
            }
        };
    }

    loop {
        // Phase 1: run everything runnable. Virtual-socket progress
        // happens in here: delivering bytes or datagrams wakes the
        // consuming task directly, so no separate I/O phase exists.
        drain_runnable!();

        // Phase 2: quiescent — advance the virtual clock to the next
        // timer deadline.
        if shared.auto_advance() {
            continue;
        }

        // Nothing runnable, no timer pending. Any socket operation
        // still parked can never be woken — the bytes it awaits would
        // have to come from a task, and no task can ever run again.
        // Name the parked endpoints so the hung test points at the
        // guilty socket instead of a bare count.
        let parked = shared.net.parked_labels();
        if parked.is_empty() {
            panic!(
                "vendored tokio runtime deadlock: the root future is pending but no \
                 task is runnable and no timer or socket operation is registered"
            );
        }
        panic!(
            "vendored tokio runtime deadlock: no task is runnable and no timer is \
             pending, but {} socket operation(s) are parked and can never be woken \
             (virtual sockets only receive from tasks in this runtime): {}",
            parked.len(),
            parked.join(", ")
        );
    }
}
