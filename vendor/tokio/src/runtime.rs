//! The single-threaded executor and its virtual-time clock.
//!
//! One [`block_on`] call owns one runtime: a FIFO ready-queue of
//! spawned tasks, a timer wheel (a `BTreeMap` keyed by virtual-time
//! deadline), a **virtual clock**, and a *retry reactor* — a list of
//! wakers parked on nonblocking socket operations that returned
//! `WouldBlock`.
//!
//! # Scheduling loop
//!
//! The loop runs four strictly ordered phases; a phase only runs when
//! every earlier phase is out of work:
//!
//! 1. **Runnable tasks** — poll the main future when woken, then drain
//!    the ready queue.
//! 2. **I/O retry** — wake every waker parked on a socket and drain
//!    again. Sockets here are loopback-only, so kernel readiness is
//!    synchronous with the peer's (our own) writes: if any parked
//!    operation can progress, one retry round finds it. Progress is
//!    detected by a counter every completed socket operation bumps.
//! 3. **Auto-advance** — if no task ran and no socket progressed, the
//!    virtual clock jumps to the earliest pending timer deadline and
//!    fires every timer due at it. This is why `sleep(100ms)`-style
//!    tests finish in microseconds of real time, deterministically.
//! 4. **Real wait** — no timers at all but sockets still parked: the
//!    awaited bytes can only come from outside this runtime (e.g. a
//!    peer process in the examples), so sleep half a millisecond of
//!    real time and retry.
//!
//! If all four phases are empty while the main future is pending, the
//! program is deadlocked and the runtime panics with a diagnosis
//! instead of hanging the test suite.
//!
//! # Virtual time
//!
//! The clock (nanoseconds since a process-wide epoch) only moves in
//! phase 3 or via [`crate::time::advance`]; real time spent inside
//! polls contributes nothing. [`crate::time::Instant::now`] reads this
//! clock, so durations measured by throttled-transfer tests reflect
//! the *modeled* link rates, not host speed. Outside a runtime,
//! `Instant::now` falls back to real time since the same epoch so the
//! two never run backwards relative to each other.

use std::collections::{BTreeMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::task::JoinHandle;

// ---------------------------------------------------------------------------
// Process epoch & thread-local current runtime
// ---------------------------------------------------------------------------

/// Process-wide real-time anchor for the virtual clock, so `Instant`s
/// taken outside any runtime stay coherent with virtual ones.
fn epoch() -> std::time::Instant {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now)
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<Shared>>> =
        const { std::cell::RefCell::new(None) };
}

/// The runtime owning the current thread, for primitives that must
/// register timers, tasks or socket retries.
pub(crate) fn current() -> Arc<Shared> {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        panic!(
            "no vendored-tokio runtime on this thread: enter one via \
             tokio::runtime::block_on, #[tokio::main] or #[tokio::test]"
        )
    })
}

/// Virtual nanoseconds since the process epoch (falls back to real
/// elapsed time outside a runtime).
pub(crate) fn now_since_epoch() -> Duration {
    match CURRENT.with(|c| c.borrow().clone()) {
        Some(shared) => Duration::from_nanos(shared.clock_ns.load(Ordering::Acquire)),
        None => epoch().elapsed(),
    }
}

/// Resets the thread-local runtime slot when `block_on` exits, on both
/// the success and the unwind path.
struct ContextGuard;

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().take());
    }
}

// ---------------------------------------------------------------------------
// Shared runtime state
// ---------------------------------------------------------------------------

/// State shared between the executor loop, spawned tasks, timers and
/// socket futures. One instance per `block_on` call.
pub(crate) struct Shared {
    /// Tasks woken and awaiting a poll, FIFO.
    queue: Mutex<VecDeque<Arc<Task>>>,
    /// Set when the `block_on` root future is woken.
    main_woken: AtomicBool,
    /// Pending timers: (virtual deadline ns, unique seq) → entry. Weak,
    /// so dropped `Sleep`s vanish on the next prune.
    timers: Mutex<BTreeMap<(u64, u64), std::sync::Weak<TimerEntry>>>,
    timer_seq: AtomicU64,
    /// Virtual now, nanoseconds since [`epoch`].
    clock_ns: AtomicU64,
    /// Wakers parked on `WouldBlock` socket operations (the retry
    /// reactor). Drained and re-filled wholesale each idle round.
    io_wakers: Mutex<Vec<Waker>>,
    /// Bumped on every socket operation that returns anything other
    /// than `WouldBlock`; the executor compares it across a retry round
    /// to decide whether real I/O progressed.
    io_ops: AtomicU64,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            main_woken: AtomicBool::new(true),
            timers: Mutex::new(BTreeMap::new()),
            timer_seq: AtomicU64::new(0),
            clock_ns: AtomicU64::new(epoch().elapsed().as_nanos() as u64),
            io_wakers: Mutex::new(Vec::new()),
            io_ops: AtomicU64::new(0),
        }
    }

    fn pop_task(&self) -> Option<Arc<Task>> {
        self.queue.lock().unwrap().pop_front()
    }

    pub(crate) fn push_task(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
    }

    /// Park a socket-operation waker for the next idle retry round.
    pub(crate) fn register_io_waker(&self, waker: Waker) {
        self.io_wakers.lock().unwrap().push(waker);
    }

    /// Record a completed (non-`WouldBlock`) socket operation.
    pub(crate) fn io_op_completed(&self) {
        self.io_ops.fetch_add(1, Ordering::Release);
    }

    pub(crate) fn clock_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Acquire)
    }

    /// Register a timer entry firing at `deadline_ns` virtual time.
    pub(crate) fn register_timer(&self, entry: &Arc<TimerEntry>) {
        let seq = self.timer_seq.fetch_add(1, Ordering::Relaxed);
        self.timers.lock().unwrap().insert((entry.deadline_ns, seq), Arc::downgrade(entry));
    }

    /// Earliest deadline with a live `Sleep` attached; prunes dropped
    /// entries on the way.
    fn next_live_deadline(&self) -> Option<u64> {
        let mut timers = self.timers.lock().unwrap();
        while let Some((&key, weak)) = timers.first_key_value() {
            if weak.strong_count() == 0 {
                timers.remove(&key);
                continue;
            }
            return Some(key.0);
        }
        None
    }

    /// Fire every live timer whose deadline is at or before the clock.
    fn fire_due(&self) {
        let now = self.clock_ns();
        let due: Vec<std::sync::Weak<TimerEntry>> = {
            let mut timers = self.timers.lock().unwrap();
            let later = timers.split_off(&(now + 1, 0));
            let due = std::mem::replace(&mut *timers, later);
            due.into_values().collect()
        };
        for weak in due {
            if let Some(entry) = weak.upgrade() {
                entry.fire();
            }
        }
    }

    /// Phase-3 auto-advance: jump the clock to the next timer deadline
    /// and fire it. Returns false when no timer is pending.
    fn auto_advance(&self) -> bool {
        let Some(deadline) = self.next_live_deadline() else {
            return false;
        };
        self.clock_ns.fetch_max(deadline, Ordering::AcqRel);
        self.fire_due();
        true
    }

    /// Manual advance (`tokio::time::advance`): move the clock by `d`,
    /// firing every timer passed along the way in deadline order.
    pub(crate) fn advance_clock_by(&self, d: Duration) {
        let target =
            self.clock_ns().saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        while let Some(deadline) = self.next_live_deadline() {
            if deadline > target {
                break;
            }
            self.clock_ns.fetch_max(deadline, Ordering::AcqRel);
            self.fire_due();
        }
        self.clock_ns.fetch_max(target, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

/// One pending `Sleep`: fires at `deadline_ns` virtual time.
#[derive(Debug)]
pub(crate) struct TimerEntry {
    pub(crate) deadline_ns: u64,
    fired: AtomicBool,
    waker: Mutex<Option<Waker>>,
}

impl TimerEntry {
    /// Create and register an entry in the current runtime.
    pub(crate) fn register(deadline_ns: u64) -> Arc<TimerEntry> {
        let entry = Arc::new(TimerEntry {
            deadline_ns,
            fired: AtomicBool::new(false),
            waker: Mutex::new(None),
        });
        current().register_timer(&entry);
        entry
    }

    pub(crate) fn is_fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    pub(crate) fn set_waker(&self, waker: &Waker) {
        *self.waker.lock().unwrap() = Some(waker.clone());
    }

    fn fire(&self) {
        self.fired.store(true, Ordering::Release);
        if let Some(waker) = self.waker.lock().unwrap().take() {
            waker.wake();
        }
    }
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

/// A spawned task: the erased future plus scheduling flags. Pushed by
/// wakers onto the shared ready queue; polled only by the runtime
/// thread.
pub(crate) struct Task {
    /// `None` once completed or aborted. Taken out during a poll so a
    /// reentrant self-wake never observes the lock held.
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    /// True while sitting in the ready queue (dedupes wakes).
    scheduled: AtomicBool,
    /// Set by `JoinHandle::abort`; the next poll drops the future.
    pub(crate) aborted: AtomicBool,
    shared: Weak<Shared>,
}

impl Task {
    /// Push onto the ready queue unless already queued.
    pub(crate) fn schedule(self: &Arc<Self>) {
        if !self.scheduled.swap(true, Ordering::AcqRel) {
            if let Some(shared) = self.shared.upgrade() {
                shared.push_task(Arc::clone(self));
            }
        }
    }

    /// Poll the task once (or drop its future if aborted).
    fn run(self: &Arc<Self>) {
        self.scheduled.store(false, Ordering::Release);
        if self.aborted.load(Ordering::Acquire) {
            *self.future.lock().unwrap() = None;
            return;
        }
        let Some(mut future) = self.future.lock().unwrap().take() else {
            return;
        };
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        if future.as_mut().poll(&mut cx).is_pending() {
            *self.future.lock().unwrap() = Some(future);
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// Waker target for the `block_on` root future.
struct MainWaker {
    shared: Arc<Shared>,
}

impl Wake for MainWaker {
    fn wake(self: Arc<Self>) {
        self.shared.main_woken.store(true, Ordering::Release);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.main_woken.store(true, Ordering::Release);
    }
}

/// Spawn `future` onto the current runtime (the vendored equivalent of
/// `tokio::spawn`). Panics outside a runtime. Unlike the real tokio the
/// task never migrates threads, but the `Send` bound is kept so code
/// written against this shim stays compatible with the real one.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let shared = current();
    let state = crate::task::new_join_state::<F::Output>();
    let completion = Arc::clone(&state);
    let task = Arc::new(Task {
        future: Mutex::new(Some(Box::pin(async move {
            let output = future.await;
            crate::task::complete(&completion, Ok(output));
        }))),
        scheduled: AtomicBool::new(false),
        aborted: AtomicBool::new(false),
        shared: Arc::downgrade(&shared),
    });
    task.schedule();
    crate::task::new_join_handle(state, task)
}

// ---------------------------------------------------------------------------
// block_on
// ---------------------------------------------------------------------------

/// Run `future` to completion on a fresh single-threaded runtime with
/// a virtual clock, driving every task it spawns. This is the only
/// entry point; `#[tokio::main]` and `#[tokio::test]` expand to it.
pub fn block_on<F: Future>(future: F) -> F::Output {
    CURRENT.with(|c| {
        assert!(
            c.borrow().is_none(),
            "vendored tokio runtime cannot be nested: block_on inside block_on"
        );
    });
    let shared = Arc::new(Shared::new());
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&shared)));
    let _guard = ContextGuard;

    let mut future = std::pin::pin!(future);
    let main_waker = Waker::from(Arc::new(MainWaker { shared: Arc::clone(&shared) }));
    let mut cx = Context::from_waker(&main_waker);

    // Polls the root future (returning on completion) and drains the
    // ready queue until nothing is runnable.
    macro_rules! drain_runnable {
        () => {
            loop {
                let mut any = false;
                if shared.main_woken.swap(false, Ordering::AcqRel) {
                    if let Poll::Ready(output) = future.as_mut().poll(&mut cx) {
                        return output;
                    }
                    any = true;
                }
                while let Some(task) = shared.pop_task() {
                    task.run();
                    any = true;
                }
                if !any {
                    break;
                }
            }
        };
    }

    loop {
        // Phase 1: run everything runnable.
        drain_runnable!();

        // Phase 2: retry parked socket operations (loopback readiness
        // is synchronous, so one round suffices to observe any data our
        // own tasks produced).
        let parked = std::mem::take(&mut *shared.io_wakers.lock().unwrap());
        if !parked.is_empty() {
            let ops_before = shared.io_ops.load(Ordering::Acquire);
            for waker in parked {
                waker.wake();
            }
            drain_runnable!();
            if shared.io_ops.load(Ordering::Acquire) != ops_before {
                continue; // real I/O progressed; go look for more work
            }
        }

        // Phase 3: quiescent — advance the virtual clock to the next
        // timer deadline.
        if shared.auto_advance() {
            continue;
        }

        // Phase 4: no timers, but sockets are parked. The bytes they
        // await can only originate outside this runtime; wait a little
        // real time and retry.
        if !shared.io_wakers.lock().unwrap().is_empty() {
            std::thread::sleep(Duration::from_micros(500));
            continue;
        }

        panic!(
            "vendored tokio runtime deadlock: the root future is pending but no \
             task is runnable and no timer or socket operation is registered"
        );
    }
}
