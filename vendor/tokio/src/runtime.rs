//! The single-threaded executor and its virtual-time clock.
//!
//! One runtime owns a FIFO ready-queue of spawned tasks, a timer wheel
//! (a lazy-deletion binary min-heap keyed by virtual-time deadline), a
//! **virtual clock**, and a `VirtualNet` registry backing every socket
//! in [`crate::net`]. [`block_on`] runs a future on a fresh runtime;
//! [`Runtime`] makes the same machinery reusable, so a worker thread
//! that simulates thousands of households pays for the allocations
//! (queues, maps, the timer heap) once instead of once per household —
//! see [`Runtime::reset`] for the reuse contract.
//!
//! # Scheduling loop
//!
//! The loop runs two strictly ordered phases; a phase only runs when
//! every earlier phase is out of work:
//!
//! 1. **Runnable tasks** — poll the main future when woken, then drain
//!    the ready queue.
//! 2. **Auto-advance** — if no task ran, the virtual clock jumps to
//!    the earliest pending timer deadline and fires every timer due at
//!    it. This is why `sleep(100ms)`-style tests finish in
//!    microseconds of real time, deterministically.
//!
//! There is no I/O phase: sockets are virtual, so every byte and every
//! datagram is produced by a task in this same runtime and delivery
//! wakes the consumer through the ordinary waker path, exactly like
//! [`crate::io::duplex`]. The old *retry reactor* (re-polling parked
//! `WouldBlock` operations) and the real-time wait for kernel
//! readiness are gone — with no kernel sockets there is nothing
//! outside the process to wait for.
//!
//! If both phases are empty while the main future is pending, the
//! program is deadlocked and the runtime panics with a diagnosis
//! instead of hanging the test suite. Socket operations register the
//! endpoint they are parked on, so the panic names each one (e.g.
//! `tcp accept on 10.0.0.1:8080`) rather than merely counting them.
//!
//! # The timer wheel
//!
//! Pending timers live in a binary min-heap ordered by
//! `(deadline_ns, seq)` — `seq` is a per-runtime registration counter,
//! so same-instant timers fire in registration order, exactly the
//! iteration order of the `BTreeMap` wheel this heap replaced (the
//! property test in `tests/timer_order.rs` holds the two orders
//! equal). Deletion is lazy: dropping a `Sleep` or resetting it to a
//! new deadline leaves the old heap slot in place, and the slot is
//! discarded when it reaches the top — either its entry is dead (the
//! `Weak` no longer upgrades) or stale (the entry's generation moved
//! past the slot's). The heap is only ever touched by the thread
//! driving the runtime, so it sits in an unsynchronized cell instead
//! of behind a `Mutex` (see `ThreadConfined`).
//!
//! # Virtual time
//!
//! The clock (nanoseconds since a process-wide epoch) only moves in
//! phase 2 or via [`crate::time::advance`]; real time spent inside
//! polls contributes nothing. [`crate::time::Instant::now`] reads this
//! clock, so durations measured by throttled-transfer tests reflect
//! the *modeled* link rates, not host speed. Outside a runtime,
//! `Instant::now` falls back to real time since the same epoch so the
//! two never run backwards relative to each other. All of the
//! workspace's timing arithmetic is relative (deadline = now + delta),
//! so behavior is invariant under translation of the clock base —
//! which is what makes [`Runtime::reset`]'s rewind sound.

use std::cell::UnsafeCell;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use crate::task::JoinHandle;

// ---------------------------------------------------------------------------
// Process epoch & thread-local current runtime
// ---------------------------------------------------------------------------

/// Process-wide real-time anchor for the virtual clock, so `Instant`s
/// taken outside any runtime stay coherent with virtual ones.
fn epoch() -> std::time::Instant {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    *EPOCH.get_or_init(std::time::Instant::now)
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<Arc<Shared>>> =
        const { std::cell::RefCell::new(None) };
}

/// The runtime owning the current thread, for primitives that must
/// register timers, tasks or virtual sockets.
pub(crate) fn current() -> Arc<Shared> {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        panic!(
            "no vendored-tokio runtime on this thread: enter one via \
             tokio::runtime::block_on, #[tokio::main] or #[tokio::test]"
        )
    })
}

/// Virtual nanoseconds since the process epoch (falls back to real
/// elapsed time outside a runtime).
pub(crate) fn now_since_epoch() -> Duration {
    // Read the clock through the borrow instead of cloning the Arc:
    // this is the hottest function in the workspace (every token-bucket
    // refill and deadline computation lands here).
    CURRENT.with(|c| match &*c.borrow() {
        Some(shared) => Duration::from_nanos(shared.clock_ns.load(Ordering::Acquire)),
        None => epoch().elapsed(),
    })
}

/// Tears the runtime down when `block_on` exits, on both the success
/// and the unwind path: cancels every task still alive, then resets
/// the thread-local runtime slot.
///
/// The cancellation is load-bearing, not cosmetic. A parked task is a
/// reference cycle: its future owns the `Sleep`s and pipe halves it
/// awaits, and those store cloned `Waker`s — which are `Arc<Task>`
/// handles right back to the task. Announcer loops, accept loops and
/// half-open connections are all parked when the root future finishes,
/// so without breaking the cycles every `block_on` would leak its
/// parked tasks and all the buffers they own (megabytes per simulated
/// household, compounding across a fleet run).
struct ContextGuard {
    shared: Arc<Shared>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        self.shared.cancel_all();
        CURRENT.with(|c| c.borrow_mut().take());
    }
}

// ---------------------------------------------------------------------------
// Thread-confined cell
// ---------------------------------------------------------------------------

/// Interior mutability without a lock, for state only the runtime's
/// driving thread touches.
///
/// `Shared` must be `Sync` (socket futures are `Send` and hold
/// `Weak<Shared>`), but the timer wheel inside it is only ever
/// accessed while executing runtime code on the thread that owns the
/// runtime: registering a timer requires [`current`] (a thread-local
/// that only `block_on` sets), and firing/peeking happens in the
/// executor loop itself. Wakers — the one part of the system that may
/// legitimately cross threads — never touch timers, only the (still
/// `Mutex`-guarded) ready queue. So a plain `UnsafeCell` with a
/// debug-mode thread assertion replaces the old `Mutex<BTreeMap>`.
struct ThreadConfined<T> {
    value: UnsafeCell<T>,
}

// SAFETY: all access goes through `with`, which (in debug builds)
// asserts the accessing thread is the one currently driving this
// runtime; see the struct docs for why no other thread can reach it.
unsafe impl<T: Send> Send for ThreadConfined<T> {}
unsafe impl<T: Send> Sync for ThreadConfined<T> {}

impl<T> ThreadConfined<T> {
    fn new(value: T) -> ThreadConfined<T> {
        ThreadConfined { value: UnsafeCell::new(value) }
    }

    /// Run `f` with exclusive access. `f` must not re-enter `with` on
    /// the same cell (the callers below never do: timer callbacks are
    /// invoked only after the borrow ends).
    fn with<R>(&self, owner: &Shared, f: impl FnOnce(&mut T) -> R) -> R {
        debug_assert!(
            CURRENT.with(|c| {
                c.borrow().as_ref().is_none_or(|shared| std::ptr::eq(&**shared, owner))
            }),
            "thread-confined runtime state accessed from a foreign runtime's thread"
        );
        // SAFETY: single-threaded by the confinement argument above;
        // non-reentrant by the `with` contract.
        unsafe { f(&mut *self.value.get()) }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// One slot in the timer heap. Compares by `(deadline_ns, seq)`
/// *reversed*, so `BinaryHeap` (a max-heap) pops the earliest deadline
/// first and same-deadline slots pop in registration order.
struct HeapTimer {
    deadline_ns: u64,
    seq: u64,
    /// The entry's generation at registration time; a mismatch at pop
    /// time means the `Sleep` was reset and this slot is stale.
    generation: u64,
    entry: std::sync::Weak<TimerEntry>,
}

impl PartialEq for HeapTimer {
    fn eq(&self, other: &Self) -> bool {
        (self.deadline_ns, self.seq) == (other.deadline_ns, other.seq)
    }
}

impl Eq for HeapTimer {}

impl PartialOrd for HeapTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the max-heap's top is the minimum key.
        (other.deadline_ns, other.seq).cmp(&(self.deadline_ns, self.seq))
    }
}

/// The pending-timer heap plus its registration counter. Lives in a
/// [`ThreadConfined`] cell: no lock, no atomics.
struct TimerWheel {
    heap: BinaryHeap<HeapTimer>,
    /// Next registration sequence number; the tiebreaker that makes
    /// same-deadline firing order deterministic.
    seq: u64,
}

impl TimerWheel {
    fn new() -> TimerWheel {
        TimerWheel { heap: BinaryHeap::new(), seq: 0 }
    }

    fn register(&mut self, entry: &Arc<TimerEntry>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapTimer {
            deadline_ns: entry.deadline_ns(),
            seq,
            generation: entry.generation(),
            entry: Arc::downgrade(entry),
        });
    }

    /// Drop stale slots off the top until a live one (or nothing)
    /// remains, then report its deadline.
    fn next_live_deadline(&mut self) -> Option<u64> {
        loop {
            let top = self.heap.peek()?;
            match top.entry.upgrade() {
                Some(entry) if entry.generation() == top.generation => {
                    return Some(top.deadline_ns);
                }
                _ => {
                    self.heap.pop();
                }
            }
        }
    }

    /// Pop the earliest live slot due at or before `now`, if any.
    fn pop_due(&mut self, now: u64) -> Option<Arc<TimerEntry>> {
        loop {
            let top = self.heap.peek()?;
            if top.deadline_ns > now {
                match top.entry.upgrade() {
                    Some(entry) if entry.generation() == top.generation => return None,
                    // Stale slot: discard and keep looking.
                    _ => {
                        self.heap.pop();
                        continue;
                    }
                }
            }
            let slot = self.heap.pop().expect("peeked");
            match slot.entry.upgrade() {
                Some(entry) if entry.generation() == slot.generation => return Some(entry),
                _ => continue,
            }
        }
    }

    /// Forget every pending timer, keeping the heap's allocation.
    fn clear(&mut self) {
        self.heap.clear();
    }
}

// ---------------------------------------------------------------------------
// Shared runtime state
// ---------------------------------------------------------------------------

/// State shared between the executor loop, spawned tasks, timers and
/// socket futures. One instance per [`Runtime`] (the free [`block_on`]
/// makes a throwaway one per call).
pub(crate) struct Shared {
    /// Tasks woken and awaiting a poll, FIFO.
    queue: Mutex<VecDeque<Arc<Task>>>,
    /// Set when the `block_on` root future is woken.
    main_woken: AtomicBool,
    /// Pending timers; see [`TimerWheel`]. Thread-confined, lock-free.
    timers: ThreadConfined<TimerWheel>,
    /// Every task ever spawned, weakly. Walked once at teardown to
    /// cancel parked tasks (see [`ContextGuard`]); completed tasks are
    /// dead weak refs by then.
    tasks: Mutex<Vec<Weak<Task>>>,
    /// Virtual now, nanoseconds since [`epoch`].
    clock_ns: AtomicU64,
    /// This runtime's virtual network: bound addresses, connection
    /// queues and parked-socket-op diagnostics. Per-runtime, so
    /// concurrent runtimes (e.g. one per simulated home on a worker
    /// pool) have fully isolated address spaces.
    net: crate::net::VirtualNet,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            main_woken: AtomicBool::new(true),
            timers: ThreadConfined::new(TimerWheel::new()),
            tasks: Mutex::new(Vec::new()),
            clock_ns: AtomicU64::new(epoch().elapsed().as_nanos() as u64),
            net: crate::net::VirtualNet::new(),
        }
    }

    fn pop_task(&self) -> Option<Arc<Task>> {
        self.queue.lock().unwrap().pop_front()
    }

    pub(crate) fn push_task(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
    }

    /// This runtime's virtual network registry.
    pub(crate) fn net(&self) -> &crate::net::VirtualNet {
        &self.net
    }

    pub(crate) fn clock_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Acquire)
    }

    /// Register a timer entry firing at its current deadline.
    pub(crate) fn register_timer(&self, entry: &Arc<TimerEntry>) {
        self.timers.with(self, |wheel| wheel.register(entry));
    }

    /// Earliest deadline with a live `Sleep` attached; prunes dropped
    /// and reset entries on the way.
    fn next_live_deadline(&self) -> Option<u64> {
        self.timers.with(self, |wheel| wheel.next_live_deadline())
    }

    /// Fire every live timer whose deadline is at or before the clock,
    /// in `(deadline, seq)` order. Entries are popped one at a time so
    /// the heap borrow never overlaps the `fire()` call (which runs
    /// wakers, and wakers may drop arbitrary state — though never
    /// timer-wheel state: dropping or resetting a `Sleep` only bumps
    /// refcounts/generations, by design).
    fn fire_due(&self) {
        let now = self.clock_ns();
        while let Some(entry) = self.timers.with(self, |wheel| wheel.pop_due(now)) {
            entry.fire();
        }
    }

    /// Phase-2 auto-advance: jump the clock to the next timer deadline
    /// and fire it. Returns false when no timer is pending.
    fn auto_advance(&self) -> bool {
        let Some(deadline) = self.next_live_deadline() else {
            return false;
        };
        self.clock_ns.fetch_max(deadline, Ordering::AcqRel);
        self.fire_due();
        true
    }

    /// Manual advance (`tokio::time::advance`): move the clock by `d`,
    /// firing every timer passed along the way in deadline order.
    pub(crate) fn advance_clock_by(&self, d: Duration) {
        let target =
            self.clock_ns().saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        while let Some(deadline) = self.next_live_deadline() {
            if deadline > target {
                break;
            }
            self.clock_ns.fetch_max(deadline, Ordering::AcqRel);
            self.fire_due();
        }
        self.clock_ns.fetch_max(target, Ordering::AcqRel);
    }

    /// Cancel every live task and clear the ready queue and timer
    /// wheel (keeping their allocations). The future drops run with
    /// whatever `CURRENT` is set to at the call site — `block_on`
    /// teardown calls this while `CURRENT` still points here, so Drop
    /// impls that consult the runtime find it.
    fn cancel_all(&self) {
        let tasks: Vec<Weak<Task>> = std::mem::take(&mut *self.tasks.lock().unwrap());
        for weak in tasks {
            if let Some(task) = weak.upgrade() {
                *task.future.lock().unwrap() = None;
            }
        }
        self.queue.lock().unwrap().clear();
        self.timers.with(self, |wheel| wheel.clear());
    }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

/// One pending `Sleep`: fires when the virtual clock reaches its
/// deadline. Reusable: [`TimerEntry::reset`] re-arms it at a new
/// deadline and bumps `generation` so the old heap slot is ignored.
pub(crate) struct TimerEntry {
    deadline_ns: AtomicU64,
    /// Bumped by every reset; heap slots carry the generation they
    /// were registered under, so stale slots identify themselves.
    generation: AtomicU64,
    fired: AtomicBool,
    waker: Mutex<Option<Waker>>,
    /// Optional fire-time gate (see [`crate::time::Sleep::gate`]): at
    /// fire time, `None` means "wake through" and `Some(deadline_ns)`
    /// means "still not ready — silently re-arm at that deadline
    /// instead of waking". Lets a throttled stream's dry-bucket wait
    /// re-check its bucket without paying a full task poll.
    gate: Mutex<Option<GateFn>>,
}

/// A [`TimerEntry`] fire-time predicate: `None` wakes the task,
/// `Some(deadline_ns)` silently re-arms at that deadline.
type GateFn = Box<dyn Fn() -> Option<u64> + Send>;

impl std::fmt::Debug for TimerEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerEntry")
            .field("deadline_ns", &self.deadline_ns)
            .field("generation", &self.generation)
            .field("fired", &self.fired)
            .finish_non_exhaustive()
    }
}

impl TimerEntry {
    /// Create and register an entry in the current runtime.
    pub(crate) fn register(deadline_ns: u64) -> Arc<TimerEntry> {
        let entry = Arc::new(TimerEntry {
            deadline_ns: AtomicU64::new(deadline_ns),
            generation: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            waker: Mutex::new(None),
            gate: Mutex::new(None),
        });
        current().register_timer(&entry);
        entry
    }

    /// Re-arm at a new deadline and re-register in the current
    /// runtime. The previously registered heap slot becomes stale (its
    /// generation no longer matches) and is lazily discarded.
    pub(crate) fn reset(self: &Arc<Self>, deadline_ns: u64) {
        self.generation.fetch_add(1, Ordering::Release);
        self.deadline_ns.store(deadline_ns, Ordering::Release);
        self.fired.store(false, Ordering::Release);
        *self.waker.lock().unwrap() = None;
        current().register_timer(self);
    }

    /// Install the fire-time gate (replacing any previous one).
    pub(crate) fn set_gate(&self, gate: GateFn) {
        *self.gate.lock().unwrap() = Some(gate);
    }

    pub(crate) fn deadline_ns(&self) -> u64 {
        self.deadline_ns.load(Ordering::Acquire)
    }

    fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    pub(crate) fn is_fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    pub(crate) fn set_waker(&self, waker: &Waker) {
        let mut slot = self.waker.lock().unwrap();
        match &*slot {
            Some(w) if w.will_wake(waker) => {}
            _ => *slot = Some(waker.clone()),
        }
    }

    fn fire(self: &Arc<Self>) {
        // Consult the gate first: a gated wait that is still not ready
        // re-arms in place — keeping its waker, never waking the task.
        // The gate runs the exact check the woken task would have run
        // at this same virtual instant, so behavior is unchanged; only
        // the wasted wake-poll-rearm round trip through the executor
        // is skipped.
        if let Some(gate) = &*self.gate.lock().unwrap() {
            if let Some(deadline_ns) = gate() {
                self.generation.fetch_add(1, Ordering::Release);
                self.deadline_ns.store(deadline_ns, Ordering::Release);
                current().register_timer(self);
                return;
            }
        }
        self.fired.store(true, Ordering::Release);
        if let Some(waker) = self.waker.lock().unwrap().take() {
            waker.wake();
        }
    }
}

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

/// A spawned task: the erased future plus scheduling flags. Pushed by
/// wakers onto the shared ready queue; polled only by the runtime
/// thread.
pub(crate) struct Task {
    /// `None` once completed or aborted. Taken out during a poll so a
    /// reentrant self-wake never observes the lock held.
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    /// True while sitting in the ready queue (dedupes wakes).
    scheduled: AtomicBool,
    /// Set by `JoinHandle::abort`; the next poll drops the future.
    pub(crate) aborted: AtomicBool,
    shared: Weak<Shared>,
}

impl Task {
    /// Push onto the ready queue unless already queued.
    pub(crate) fn schedule(self: &Arc<Self>) {
        if !self.scheduled.swap(true, Ordering::AcqRel) {
            if let Some(shared) = self.shared.upgrade() {
                shared.push_task(Arc::clone(self));
            }
        }
    }

    /// Poll the task once (or drop its future if aborted).
    fn run(self: &Arc<Self>) {
        self.scheduled.store(false, Ordering::Release);
        if self.aborted.load(Ordering::Acquire) {
            *self.future.lock().unwrap() = None;
            return;
        }
        let Some(mut future) = self.future.lock().unwrap().take() else {
            return;
        };
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        if future.as_mut().poll(&mut cx).is_pending() {
            *self.future.lock().unwrap() = Some(future);
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// Waker target for the `block_on` root future.
struct MainWaker {
    shared: Arc<Shared>,
}

impl Wake for MainWaker {
    fn wake(self: Arc<Self>) {
        self.shared.main_woken.store(true, Ordering::Release);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.main_woken.store(true, Ordering::Release);
    }
}

/// Spawn `future` onto the current runtime (the vendored equivalent of
/// `tokio::spawn`). Panics outside a runtime. Unlike the real tokio the
/// task never migrates threads, but the `Send` bound is kept so code
/// written against this shim stays compatible with the real one.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let shared = current();
    let state = crate::task::new_join_state::<F::Output>();
    let completion = Arc::clone(&state);
    let task = Arc::new(Task {
        future: Mutex::new(Some(Box::pin(async move {
            let output = future.await;
            crate::task::complete(&completion, Ok(output));
        }))),
        scheduled: AtomicBool::new(false),
        aborted: AtomicBool::new(false),
        shared: Arc::downgrade(&shared),
    });
    shared.tasks.lock().unwrap().push(Arc::downgrade(&task));
    task.schedule();
    crate::task::new_join_handle(state, task)
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// A reusable single-threaded runtime.
///
/// Equivalent to calling the free [`block_on`] except the runtime's
/// heap state — ready queue, timer heap, task registry, virtual-net
/// maps — survives across calls, so a worker that drives many
/// short-lived futures (one simulated household each, say) allocates
/// that machinery once. Deviations from real tokio's `Runtime`, both
/// in the direction this runtime needs: `new` is infallible (there is
/// no reactor to set up), `block_on` takes `&mut self` (the runtime is
/// strictly single-threaded; exclusive borrow makes misuse a compile
/// error), and [`reset`](Runtime::reset) exists.
pub struct Runtime {
    shared: Arc<Shared>,
}

impl Default for Runtime {
    fn default() -> Runtime {
        Runtime::new()
    }
}

impl Runtime {
    /// A fresh runtime with an empty task queue, timer heap and
    /// virtual network.
    pub fn new() -> Runtime {
        Runtime { shared: Arc::new(Shared::new()) }
    }

    /// Run `future` to completion, driving every task it spawns — the
    /// reusable-state equivalent of the free [`block_on`], with the
    /// same teardown: any task still parked when the root future
    /// finishes is cancelled (its future dropped) before this returns,
    /// so parked accept loops and half-open pipes never outlive the
    /// call.
    pub fn block_on<F: Future>(&mut self, future: F) -> F::Output {
        CURRENT.with(|c| {
            assert!(
                c.borrow().is_none(),
                "vendored tokio runtime cannot be nested: block_on inside block_on"
            );
        });
        let shared = Arc::clone(&self.shared);
        shared.main_woken.store(true, Ordering::Release);
        CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(&shared)));
        let _guard = ContextGuard { shared: Arc::clone(&shared) };

        let mut future = std::pin::pin!(future);
        let main_waker = Waker::from(Arc::new(MainWaker { shared: Arc::clone(&shared) }));
        let mut cx = Context::from_waker(&main_waker);

        // Polls the root future (returning on completion) and drains
        // the ready queue until nothing is runnable.
        macro_rules! drain_runnable {
            () => {
                loop {
                    let mut any = false;
                    if shared.main_woken.swap(false, Ordering::AcqRel) {
                        if let Poll::Ready(output) = future.as_mut().poll(&mut cx) {
                            return output;
                        }
                        any = true;
                    }
                    while let Some(task) = shared.pop_task() {
                        task.run();
                        any = true;
                    }
                    if !any {
                        break;
                    }
                }
            };
        }

        loop {
            // Phase 1: run everything runnable. Virtual-socket progress
            // happens in here: delivering bytes or datagrams wakes the
            // consuming task directly, so no separate I/O phase exists.
            drain_runnable!();

            // Phase 2: quiescent — advance the virtual clock to the
            // next timer deadline.
            if shared.auto_advance() {
                continue;
            }

            // Nothing runnable, no timer pending. Any socket operation
            // still parked can never be woken — the bytes it awaits
            // would have to come from a task, and no task can ever run
            // again. Name the parked endpoints so the hung test points
            // at the guilty socket instead of a bare count.
            let parked = shared.net.parked_labels();
            if parked.is_empty() {
                panic!(
                    "vendored tokio runtime deadlock: the root future is pending but no \
                     task is runnable and no timer or socket operation is registered"
                );
            }
            panic!(
                "vendored tokio runtime deadlock: no task is runnable and no timer is \
                 pending, but {} socket operation(s) are parked and can never be woken \
                 (virtual sockets only receive from tasks in this runtime): {}",
                parked.len(),
                parked.join(", ")
            );
        }
    }

    /// Restore the runtime to an as-new state while keeping its
    /// allocations, so the next [`block_on`](Runtime::block_on) is
    /// indistinguishable from one on a fresh runtime:
    ///
    /// - every surviving task is cancelled and the ready queue, task
    ///   registry and timer heap are emptied (normally already done by
    ///   `block_on` teardown — repeated here so `reset` alone
    ///   guarantees the contract);
    /// - the timer sequence counter rewinds to 0, so same-deadline
    ///   firing order replays exactly;
    /// - the virtual network forgets every binding, parked-op label
    ///   and ephemeral-port cursor, and zeroes [`crate::net::stats`];
    /// - the virtual clock rewinds to the value a fresh runtime would
    ///   start at.
    ///
    /// Everything observable from inside `block_on` is covered, which
    /// is what makes per-worker runtime reuse digest-invariant for the
    /// fleet: the clock base is the only thing that differs from a
    /// fresh runtime, and all workspace timing arithmetic is relative,
    /// so behavior is invariant under clock translation (the fourth
    /// determinism invariant, DESIGN.md §11/§13).
    pub fn reset(&mut self) {
        // `cancel_all` drops futures; their Drop impls may consult the
        // runtime, so run them with CURRENT set, like block_on teardown
        // does. (Outside block_on, CURRENT is normally unset here.)
        let entered = CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            if cur.is_none() {
                *cur = Some(Arc::clone(&self.shared));
                true
            } else {
                assert!(
                    std::ptr::eq(&**cur.as_ref().unwrap(), &*self.shared),
                    "Runtime::reset called while a different runtime is running on this thread"
                );
                false
            }
        });
        self.shared.cancel_all();
        if entered {
            CURRENT.with(|c| c.borrow_mut().take());
        }
        self.shared.timers.with(&self.shared, |wheel| wheel.seq = 0);
        self.shared.net.reset();
        self.shared.clock_ns.store(epoch().elapsed().as_nanos() as u64, Ordering::Release);
        self.shared.main_woken.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// block_on
// ---------------------------------------------------------------------------

/// Run `future` to completion on a fresh single-threaded runtime with
/// a virtual clock, driving every task it spawns. `#[tokio::main]` and
/// `#[tokio::test]` expand to this; code that runs many futures on one
/// thread should hold a [`Runtime`] and reuse it instead.
pub fn block_on<F: Future>(future: F) -> F::Output {
    Runtime::new().block_on(future)
}

#[cfg(test)]
mod tests {
    //! The timer-order oracle: the lazy-deletion heap must fire the
    //! exact `(deadline, seq)` sequence a retained `BTreeMap` wheel
    //! (the pre-heap implementation, kept here as the reference model)
    //! would, including same-instant ties, cancelled entries (dropped
    //! `Sleep`s whose slots are lazily discarded) and mid-flight
    //! resets. Exercised as a property test over seeded random
    //! register / cancel / reset / advance schedules.

    use super::*;
    use std::collections::BTreeMap;

    fn entry(deadline_ns: u64) -> Arc<TimerEntry> {
        Arc::new(TimerEntry {
            deadline_ns: AtomicU64::new(deadline_ns),
            generation: AtomicU64::new(0),
            fired: AtomicBool::new(false),
            waker: Mutex::new(None),
            gate: Mutex::new(None),
        })
    }

    /// Deterministic splitmix-style generator so every CI run replays
    /// the same schedules.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    /// The reference wheel: the old `BTreeMap<(deadline, seq), Weak>`
    /// with eager removal on reset (observably equivalent to the
    /// heap's lazy discard) and `split_off`-based firing.
    struct Reference {
        map: BTreeMap<(u64, u64), (u64, std::sync::Weak<TimerEntry>)>,
    }

    impl Reference {
        fn register(&mut self, seq: u64, e: &Arc<TimerEntry>) {
            self.map.insert((e.deadline_ns(), seq), (e.generation(), Arc::downgrade(e)));
        }

        fn drop_stale_for(&mut self, e: &Arc<TimerEntry>) {
            self.map.retain(|_, (generation, weak)| {
                weak.upgrade()
                    .is_none_or(|live| !Arc::ptr_eq(&live, e) || *generation == e.generation())
            });
        }

        fn fire_due(&mut self, now: u64) -> Vec<Arc<TimerEntry>> {
            let later = self.map.split_off(&(now + 1, 0));
            let due = std::mem::replace(&mut self.map, later);
            due.into_values()
                .filter_map(|(generation, weak)| {
                    weak.upgrade().filter(|e| e.generation() == generation)
                })
                .collect()
        }
    }

    /// Identify a fired entry by its index in the creation registry
    /// (pointer identity is unambiguous while the Arc is live).
    fn id_of(registry: &[std::sync::Weak<TimerEntry>], e: &Arc<TimerEntry>) -> usize {
        registry
            .iter()
            .position(|weak| weak.upgrade().is_some_and(|live| Arc::ptr_eq(&live, e)))
            .expect("fired entry was never registered")
    }

    #[test]
    fn heap_wheel_fires_in_btreemap_oracle_order() {
        for case in 0u64..96 {
            let mut rng = Lcg(0x9E37_79B9_7F4A_7C15 ^ (case.wrapping_mul(0x1234_5678_9ABC_DEF1)));
            let mut wheel = TimerWheel::new();
            let mut reference = Reference { map: BTreeMap::new() };
            // Ownership: dropping from `live` is a cancel (the heap
            // slot's Weak dies, like dropping a `Sleep`).
            let mut live: Vec<Arc<TimerEntry>> = Vec::new();
            let mut registry: Vec<std::sync::Weak<TimerEntry>> = Vec::new();
            let mut now = 0u64;
            let mut fired_wheel: Vec<(usize, u64)> = Vec::new();
            let mut fired_ref: Vec<(usize, u64)> = Vec::new();

            for _step in 0..240 {
                match rng.next() % 10 {
                    // Register a new timer; coarse deadlines force ties.
                    0..=4 => {
                        let e = entry(now + rng.next() % 8);
                        let seq = wheel.seq;
                        wheel.register(&e);
                        reference.register(seq, &e);
                        registry.push(Arc::downgrade(&e));
                        live.push(e);
                    }
                    // Cancel: drop the owning Arc, leaving the heap
                    // slot (and the reference's Weak) to go stale.
                    5 => {
                        if !live.is_empty() {
                            let i = (rng.next() as usize) % live.len();
                            live.swap_remove(i);
                        }
                    }
                    // Reset a live timer mid-flight (what
                    // `Sleep::reset` does, minus the `current()` hop).
                    6 => {
                        if !live.is_empty() {
                            let i = (rng.next() as usize) % live.len();
                            let e = Arc::clone(&live[i]);
                            e.generation.fetch_add(1, Ordering::Release);
                            e.deadline_ns.store(now + rng.next() % 8, Ordering::Release);
                            e.fired.store(false, Ordering::Release);
                            let seq = wheel.seq;
                            wheel.register(&e);
                            reference.drop_stale_for(&e);
                            reference.register(seq, &e);
                        }
                    }
                    // Advance time and fire everything due.
                    _ => {
                        now += rng.next() % 6;
                        while let Some(e) = wheel.pop_due(now) {
                            fired_wheel.push((id_of(&registry, &e), e.deadline_ns()));
                        }
                        for e in reference.fire_due(now) {
                            fired_ref.push((id_of(&registry, &e), e.deadline_ns()));
                        }
                        assert_eq!(fired_wheel, fired_ref, "case {case} diverged at now={now}");
                    }
                }
            }

            // Drain both wheels completely (finite horizon: the
            // reference's split_off key is `now + 1`).
            let horizon = 1u64 << 40;
            while let Some(e) = wheel.pop_due(horizon) {
                fired_wheel.push((id_of(&registry, &e), e.deadline_ns()));
            }
            for e in reference.fire_due(horizon) {
                fired_ref.push((id_of(&registry, &e), e.deadline_ns()));
            }
            assert_eq!(fired_wheel, fired_ref, "case {case} diverged on final drain");
            assert!(wheel.next_live_deadline().is_none(), "case {case} left live slots");
        }
    }
}
