//! Offline vendored mini-`criterion`.
//!
//! The build container has no crates.io access, so this crate provides
//! the criterion API surface the workspace's benches use — groups,
//! `bench_function`, `iter`, `iter_batched`, the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple but real measurement
//! loop: warm up for the configured time, then run timed batches for
//! the configured measurement time and report the median batch rate.
//!
//! Output format (one line per benchmark):
//! `bench <group>/<name> ... median <t> ns/iter (<n> iters)`
//!
//! No statistical analysis, plots, or saved baselines; use
//! `crates/bench/src/bin/bench_summary.rs` for tracked JSON numbers.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (std's is the real thing).
pub use std::hint::black_box;

/// Batch sizing hint (accepted for API compatibility; the mini harness
/// always re-runs setup per batch element).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level harness handle.
pub struct Criterion {
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_warm_up: Duration::from_millis(300),
            default_measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            sample_size: 20,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let mut group = self.benchmark_group("");
        group.bench_function(name, |b| f(b));
        group.finish();
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let name = name.into();
        let label = if self.name.is_empty() { name } else { format!("{}/{}", self.name, name) };
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            samples_ns_per_iter: Vec::new(),
            total_iters: 0,
        };
        f(&mut bencher);
        bencher.report(&label);
    }

    /// Finish the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Measures one benchmark routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns_per_iter: Vec<f64>,
    total_iters: u64,
}

impl Bencher {
    /// Benchmark `routine` called in a tight loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Pick a batch size so one sample is ~measurement/sample_size.
        let per_sample_ns = self.measurement.as_nanos() as f64 / self.sample_size as f64;
        let batch = ((per_sample_ns / est_ns).round() as u64).max(1);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64;
            self.samples_ns_per_iter.push(ns / batch as f64);
            self.total_iters += batch;
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
        }

        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns_per_iter.push(t.elapsed().as_nanos() as f64);
            self.total_iters += 1;
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples_ns_per_iter.is_empty() {
            println!("bench {label:<50} no samples");
            return;
        }
        self.samples_ns_per_iter.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let median = self.samples_ns_per_iter[self.samples_ns_per_iter.len() / 2];
        println!("bench {label:<50} median {median:>14.1} ns/iter ({} iters)", self.total_iters);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
