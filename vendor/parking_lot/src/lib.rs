//! Offline vendored `parking_lot` facade.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free lock API
//! (no `Result`, poisoning ignored). Functionally equivalent for the
//! workspace's uses; slower than the real crate, which is irrelevant
//! for tests.

use std::sync;

/// Mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (ignores poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RwLock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create an RwLock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock (ignores poisoning).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock (ignores poisoning).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
