//! Offline vendored `tokio-macros`: the `#[tokio::main]` and
//! `#[tokio::test]` attribute macros, re-emitted over the vendored
//! single-threaded runtime (`tokio::runtime::block_on`).
//!
//! Both macros perform the same mechanical rewrite — no `syn`/`quote`,
//! just `proc_macro` token surgery, mirroring how the sibling
//! `serde_derive` shim avoids heavyweight parser dependencies:
//!
//! ```text
//! #[tokio::test]                      #[test]
//! async fn name() { body }     →      fn name() {
//!                                         ::tokio::runtime::block_on(async { body })
//!                                     }
//! ```
//!
//! Attribute arguments (`flavor = "..."`, `start_paused = true`,
//! `worker_threads = N`) are accepted and ignored: the vendored runtime
//! is always single-threaded and its clock is always virtual with
//! auto-advance, which subsumes `start_paused` (see the runtime docs).

use proc_macro::{Delimiter, Group, Ident, Punct, Spacing, Span, TokenStream, TokenTree};

/// Marks an `async fn main` as the program entry point, executing it to
/// completion on the vendored single-threaded runtime.
#[proc_macro_attribute]
pub fn main(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

/// Marks an `async fn` as a `#[test]`, executing it to completion on a
/// fresh instance of the vendored single-threaded runtime.
#[proc_macro_attribute]
pub fn test(_args: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}

/// Rewrite `async fn f(..) -> R { body }` into a synchronous
/// `fn f(..) -> R { ::tokio::runtime::block_on(async { body }) }`,
/// optionally prefixed with `#[test]`. Leading attributes and
/// visibility are preserved; the final brace group is treated as the
/// body, everything between `async` and it as the signature.
fn rewrite(item: TokenStream, add_test_attr: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();

    // The function body is the trailing brace-delimited group.
    let Some((TokenTree::Group(body), signature)) = tokens.split_last() else {
        panic!("#[tokio::main]/#[tokio::test] expects a function item");
    };
    assert!(
        body.delimiter() == Delimiter::Brace,
        "#[tokio::main]/#[tokio::test] expects a function with a braced body"
    );

    let mut out = TokenStream::new();
    if add_test_attr {
        out.extend([
            TokenTree::Punct(Punct::new('#', Spacing::Alone)),
            TokenTree::Group(Group::new(
                Delimiter::Bracket,
                TokenStream::from(TokenTree::Ident(Ident::new("test", Span::call_site()))),
            )),
        ]);
    }

    // Copy the signature, dropping the `async` qualifier.
    let mut saw_async = false;
    for tt in signature {
        if let TokenTree::Ident(ident) = tt {
            if !saw_async && ident.to_string() == "async" {
                saw_async = true;
                continue;
            }
        }
        out.extend([tt.clone()]);
    }
    assert!(saw_async, "#[tokio::main]/#[tokio::test] requires an `async fn`");

    // New body: ::tokio::runtime::block_on(async move { <body> })
    let mut call: TokenStream = "::tokio::runtime::block_on".parse().expect("path tokens parse");
    let mut arg = TokenStream::new();
    arg.extend([
        TokenTree::Ident(Ident::new("async", Span::call_site())),
        TokenTree::Ident(Ident::new("move", Span::call_site())),
        TokenTree::Group(Group::new(Delimiter::Brace, body.stream())),
    ]);
    call.extend([TokenTree::Group(Group::new(Delimiter::Parenthesis, arg))]);
    out.extend([TokenTree::Group(Group::new(Delimiter::Brace, call))]);
    out
}
