//! Offline vendored `tokio-macros`: the `#[tokio::main]` and
//! `#[tokio::test]` attribute macros, re-emitted over the vendored
//! single-threaded runtime (`tokio::runtime::block_on`).
//!
//! Both macros perform the same mechanical rewrite — no `syn`/`quote`,
//! just `proc_macro` token surgery, mirroring how the sibling
//! `serde_derive` shim avoids heavyweight parser dependencies:
//!
//! ```text
//! #[tokio::test]                      #[test]
//! async fn name() { body }     →      fn name() {
//!                                         ::tokio::runtime::block_on(async { body })
//!                                     }
//! ```
//!
//! Attribute arguments are *validated*, then ignored: the vendored
//! runtime is always single-threaded and its clock is always virtual
//! with auto-advance, which subsumes `start_paused` (see the runtime
//! docs). `#[tokio::test]` accepts only `flavor` and `start_paused`;
//! `#[tokio::main]` additionally accepts `worker_threads`. Any other
//! key — a typo, or a real-tokio knob whose semantics this runtime
//! cannot honor — is a compile error instead of a silently dropped
//! setting.

use proc_macro::{Delimiter, Group, Ident, Punct, Spacing, Span, TokenStream, TokenTree};

/// Marks an `async fn main` as the program entry point, executing it to
/// completion on the vendored single-threaded runtime.
///
/// Accepted arguments: `flavor`, `worker_threads`, `start_paused`.
/// Unknown keys are a compile error.
#[proc_macro_attribute]
pub fn main(args: TokenStream, item: TokenStream) -> TokenStream {
    check_args("#[tokio::main]", args, &["flavor", "worker_threads", "start_paused"]);
    rewrite(item, false)
}

/// Marks an `async fn` as a `#[test]`, executing it to completion on a
/// fresh instance of the vendored single-threaded runtime.
///
/// Accepted arguments: `flavor`, `start_paused`. Unknown keys are a
/// compile error.
#[proc_macro_attribute]
pub fn test(args: TokenStream, item: TokenStream) -> TokenStream {
    check_args("#[tokio::test]", args, &["flavor", "start_paused"]);
    rewrite(item, true)
}

/// Validate `key = value` attribute arguments against an allow-list.
/// The values themselves are not interpreted — the runtime has exactly
/// one flavor and one clock mode — but an unknown *key* means the test
/// author expected behavior this runtime will not provide, so fail the
/// build loudly.
fn check_args(attr: &str, args: TokenStream, allowed: &[&str]) {
    let mut expect_key = true;
    for tt in args {
        match &tt {
            TokenTree::Ident(ident) if expect_key => {
                let key = ident.to_string();
                assert!(
                    allowed.contains(&key.as_str()),
                    "{attr} does not accept the argument `{key}` (vendored runtime accepts \
                     only: {})",
                    allowed.join(", ")
                );
                expect_key = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => expect_key = true,
            // `=` and the value tokens between key and comma.
            _ if !expect_key => {}
            _ => panic!("{attr} expects `key = value` arguments, got `{tt}`"),
        }
    }
}

/// Rewrite `async fn f(..) -> R { body }` into a synchronous
/// `fn f(..) -> R { ::tokio::runtime::block_on(async { body }) }`,
/// optionally prefixed with `#[test]`. Leading attributes and
/// visibility are preserved; the final brace group is treated as the
/// body, everything between `async` and it as the signature.
fn rewrite(item: TokenStream, add_test_attr: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();

    // The function body is the trailing brace-delimited group.
    let Some((TokenTree::Group(body), signature)) = tokens.split_last() else {
        panic!("#[tokio::main]/#[tokio::test] expects a function item");
    };
    assert!(
        body.delimiter() == Delimiter::Brace,
        "#[tokio::main]/#[tokio::test] expects a function with a braced body"
    );

    let mut out = TokenStream::new();
    if add_test_attr {
        out.extend([
            TokenTree::Punct(Punct::new('#', Spacing::Alone)),
            TokenTree::Group(Group::new(
                Delimiter::Bracket,
                TokenStream::from(TokenTree::Ident(Ident::new("test", Span::call_site()))),
            )),
        ]);
    }

    // Copy the signature, dropping the `async` qualifier.
    let mut saw_async = false;
    for tt in signature {
        if let TokenTree::Ident(ident) = tt {
            if !saw_async && ident.to_string() == "async" {
                saw_async = true;
                continue;
            }
        }
        out.extend([tt.clone()]);
    }
    assert!(saw_async, "#[tokio::main]/#[tokio::test] requires an `async fn`");

    // New body: ::tokio::runtime::block_on(async move { <body> })
    let mut call: TokenStream = "::tokio::runtime::block_on".parse().expect("path tokens parse");
    let mut arg = TokenStream::new();
    arg.extend([
        TokenTree::Ident(Ident::new("async", Span::call_site())),
        TokenTree::Ident(Ident::new("move", Span::call_site())),
        TokenTree::Group(Group::new(Delimiter::Brace, body.stream())),
    ]);
    call.extend([TokenTree::Group(Group::new(Delimiter::Parenthesis, arg))]);
    out.extend([TokenTree::Group(Group::new(Delimiter::Brace, call))]);
    out
}
