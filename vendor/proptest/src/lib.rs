//! Offline vendored mini-`proptest`.
//!
//! The build container has no crates.io access, so this crate implements
//! the slice of the proptest API the workspace uses: the [`Strategy`]
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `collection::vec`/`collection::btree_set`, `option::of`, `Just`,
//! `any`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports its case index and the
//!   deterministic per-test seed; re-running the test replays the same
//!   inputs, which is what shrinking buys in practice for CI.
//! - **Deterministic seeding.** The RNG seed is derived from the test
//!   name, so runs are reproducible without `proptest-regressions`
//!   files (existing regression files are ignored).

use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Random source handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn from_name(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform `u64`.
    pub fn bits(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.inner.random_range(0..n)
    }
}

/// A generator of test values (mini version of `proptest::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a dependent strategy from each value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.bits() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.bits() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Treating the inclusive end as exclusive loses one representable
        // value — immaterial for continuous test inputs.
        self.start() + (self.end() - self.start()) * rng.unit()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy (mini `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit() * 2e6 - 1e6
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mini `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Inclusive-at-start, configurable size specification for collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi_inclusive: n }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi_inclusive {
            self.lo
        } else {
            self.lo + rng.index(self.hi_inclusive - self.lo + 1)
        }
    }
}

/// Collection strategies (mini `proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of values from `element`, size in `size` where the
    /// element domain permits (duplicates are redrawn a bounded number
    /// of times).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.draw(rng).max(1);
            let mut out = BTreeSet::new();
            // Bounded attempts: small element domains may not be able to
            // fill the target size.
            for _ in 0..target * 20 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// Option strategies (mini `proptest::option`).
pub mod option {
    use super::*;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit() < 0.75 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

/// Per-block configuration (mini `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; local-case timeouts are not enforced.
    pub timeout: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128, max_shrink_iters: 0, timeout: 0 }
    }
}

/// A failed or rejected test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure with message.
    Fail(String),
    /// Case rejected (not counted as failure).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result alias used by generated test closures.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives the cases of one property (mini `proptest::test_runner::TestRunner`).
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    /// Create a runner with a deterministic per-test seed.
    pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
        let rng = TestRng::from_name(name);
        TestRunner { config, name, rng }
    }

    /// Run the property over `config.cases` sampled inputs, panicking on
    /// the first failure with enough context to replay it.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        for case in 0..self.config.cases {
            let value = strategy.sample(&mut self.rng);
            match test(value) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest property {} failed at case {}/{} (deterministic seed from test \
                     name; rerun to replay): {}",
                    self.name, case, self.config.cases, msg
                ),
            }
        }
    }
}

/// Everything a test module needs (mini `proptest::prelude`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config, stringify!($name));
                let strategy = ($($strat,)+);
                runner.run(&strategy, |($($pat,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_sampling() {
        let s = (0usize..10, 0.0f64..1.0);
        let mut r1 = crate::TestRng::from_name("x");
        let mut r2 = crate::TestRng::from_name("x");
        for _ in 0..32 {
            assert_eq!(crate::Strategy::sample(&s.0, &mut r1), {
                crate::Strategy::sample(&s.0, &mut r2)
            });
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(
            v in crate::collection::vec(0u64..100, 2..6),
            s in crate::collection::btree_set(0usize..50, 1..=4),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }

        #[test]
        fn combinators_compose(
            pair in (1usize..5).prop_flat_map(|n| {
                crate::collection::vec(0.0f64..10.0, n..n + 1).prop_map(move |v| (n, v))
            }),
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest property")]
    fn failures_panic_with_context() {
        // No `#[test]` here: an inner item cannot be collected as a
        // test (unnameable_test_items); the fn is invoked directly.
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
